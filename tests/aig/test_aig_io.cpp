#include "aig/aig_io.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace emorphic {
namespace {

TEST(AigIo, EquationRoundTrip) {
  Rng rng(21);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 50, rng);
    std::string text = write_equations(aig);
    Aig back = read_equations(text);
    EXPECT_EQ(back.num_pis(), aig.num_pis());
    EXPECT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_TRUE(testing::functionally_equal(aig, back));
  }
}

TEST(AigIo, EquationParserOperators) {
  const std::string text =
      "INORDER = a b c;\n"
      "OUTORDER = f g h;\n"
      "f = a & b | !c;\n"
      "g = (a | b) & (a ^ c);\n"
      "h = 1 & a | 0;\n";
  Aig aig = read_equations(text);
  EXPECT_EQ(aig.num_pis(), 3u);
  EXPECT_EQ(aig.num_pos(), 3u);
  Tt a = tt_var(0, 3), b = tt_var(1, 3), c = tt_var(2, 3);
  EXPECT_EQ(exhaustive_tt(aig, 0), ((a & b) | (~c & tt_mask(3))) & tt_mask(3));
  EXPECT_EQ(exhaustive_tt(aig, 1), ((a | b) & (a ^ c)) & tt_mask(3));
  EXPECT_EQ(exhaustive_tt(aig, 2), a);
}

TEST(AigIo, EquationParserComments) {
  const std::string text =
      "# a comment\nINORDER = x;\nOUTORDER = y;\n# more\ny = !x;\n";
  Aig aig = read_equations(text);
  EXPECT_EQ(exhaustive_tt(aig, 0), tt_not(tt_var(0, 1), 1));
}

TEST(AigIo, EquationErrors) {
  EXPECT_THROW(read_equations("INORDER = a;\nOUTORDER = f;\nf = b;\n"),
               std::runtime_error);  // undefined signal
  EXPECT_THROW(read_equations("INORDER = a;\nOUTORDER = f;\n"),
               std::runtime_error);  // undefined output
  EXPECT_THROW(read_equations("INORDER = a\n"), std::runtime_error);
}

TEST(AigIo, AigerRoundTrip) {
  Rng rng(23);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(5, 3, 40, rng);
    std::string text = write_aiger(aig);
    Aig back = read_aiger(text);
    EXPECT_EQ(back.num_pis(), aig.num_pis());
    EXPECT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_TRUE(testing::functionally_equal(aig, back));
  }
}

TEST(AigIo, AigerHeaderValidation) {
  EXPECT_THROW(read_aiger("aig 1 1 0 0 0\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 2 1 1 0 0\n2\n"), std::runtime_error);  // latch
}

// --- server-hardening negative suite ----------------------------------------
// The synthesis daemon feeds client-supplied text straight into read_aiger;
// every malformed shape below must throw std::runtime_error (never assert,
// never read out of bounds, never allocate off attacker-declared counts).

TEST(AigIo, AigerRejectsTruncatedHeader) {
  EXPECT_THROW(read_aiger(""), std::runtime_error);
  EXPECT_THROW(read_aiger("aag"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1"), std::runtime_error);
}

TEST(AigIo, AigerRejectsNonNumericTokens) {
  EXPECT_THROW(read_aiger("aag x 2 0 1 1\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\nfoo\n4\n6\n6 2 4\n"),
               std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 two 4\n"),
               std::runtime_error);
}

TEST(AigIo, AigerRejectsOutOfRangeLiterals) {
  // PI literal 99 exceeds 2m+1 = 7.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n99\n4\n6\n6 2 4\n"),
               std::runtime_error);
  // AND output literal out of range.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n88 2 4\n"),
               std::runtime_error);
  // PO literal out of range.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n99\n6 2 4\n"),
               std::runtime_error);
}

TEST(AigIo, AigerRejectsOversizedDeclaredCounts) {
  // Counts that could never fit in the input must be rejected before any
  // allocation is sized from them.
  EXPECT_THROW(read_aiger("aag 4000000000 4000000000 0 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(read_aiger("aag 4000000000 1 0 4000000000 0\n2\n"),
               std::runtime_error);
  EXPECT_THROW(read_aiger("aag 18446744073709551615 1 0 1 0\n2\n2\n"),
               std::runtime_error);
  // Header arithmetic: i + a may not exceed m.
  EXPECT_THROW(read_aiger("aag 2 2 0 0 2\n2\n4\n"), std::runtime_error);
}

TEST(AigIo, AigerRejectsMalformedDefinitions) {
  // Odd (complemented) PI literal.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n3\n4\n6\n6 2 4\n"),
               std::runtime_error);
  // Constant literal declared as PI.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n0\n4\n6\n6 2 4\n"),
               std::runtime_error);
  // Duplicate definition (PI literal repeated).
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n2\n6\n6 2 4\n"),
               std::runtime_error);
  // AND redefines a PI literal.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n2 2 4\n"),
               std::runtime_error);
  // Odd AND output literal.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n7 2 4\n"),
               std::runtime_error);
}

TEST(AigIo, AigerRejectsUseBeforeDefinition) {
  // The AND at literal 6 references literal 8, defined only later — the
  // reader requires topological order (matching write_aiger's output).
  EXPECT_THROW(
      read_aiger("aag 4 1 0 1 3\n2\n6\n6 8 2\n8 2 2\n4 2 2\n"),
      std::runtime_error);
  // PO references a never-defined literal inside range.
  EXPECT_THROW(read_aiger("aag 3 2 0 1 0\n2\n4\n6\n"), std::runtime_error);
}

TEST(AigIo, AigerRejectsTruncatedSections) {
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 2\n"),
               std::runtime_error);
}

TEST(AigIo, AigerAcceptsMinimalValidCircuit) {
  // The happy path of the shapes above: 2 PIs, one AND, one PO.
  Aig aig = read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n");
  EXPECT_EQ(aig.num_pis(), 2u);
  EXPECT_EQ(aig.num_pos(), 1u);
  EXPECT_EQ(aig.num_ands(), 1u);
  EXPECT_EQ(exhaustive_tt(aig, 0), tt_var(0, 2) & tt_var(1, 2));
}

TEST(AigIo, AigerConstantOutputs) {
  Aig aig;
  aig.add_pi();
  aig.add_po(kLitTrue, "t");
  aig.add_po(kLitFalse, "f");
  Aig back = read_aiger(write_aiger(aig));
  EXPECT_EQ(back.po(0), kLitTrue);
  EXPECT_EQ(back.po(1), kLitFalse);
}

TEST(AigIo, EquationConstantOutputs) {
  Aig aig;
  aig.add_pi("a");
  aig.add_po(kLitTrue, "t");
  Aig back = read_equations(write_equations(aig));
  EXPECT_EQ(back.po(0), kLitTrue);
}

// --- binary AIGER ("aig") ----------------------------------------------------

TEST(AigIoBinary, RoundTripPreservesFunctionAndNames) {
  Rng rng(29);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(5, 3, 40, rng);
    std::string bytes = write_aiger_binary(aig);
    Aig back = read_aiger_binary(bytes);
    ASSERT_EQ(back.num_pis(), aig.num_pis());
    ASSERT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_TRUE(testing::functionally_equal(aig, back));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) {
      EXPECT_EQ(back.pi_name(i), aig.pi_name(i));
    }
    for (std::size_t i = 0; i < aig.num_pos(); ++i) {
      EXPECT_EQ(back.po_name(i), aig.po_name(i));
    }
  }
}

TEST(AigIoBinary, WriteReadWriteIsAByteFixedPoint) {
  // write(read(write(aig))) == write(aig): the writer renumbers PIs first
  // and ANDs ascending, and the reader rebuilds in exactly that order, so
  // one round trip normalizes and a second changes nothing. The partition
  // checkpoint format stores these bytes and depends on this property for
  // resume determinism.
  Rng rng(31);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 60, rng);
    std::string once = write_aiger_binary(aig);
    std::string twice = write_aiger_binary(read_aiger_binary(once));
    EXPECT_EQ(twice, once) << "round " << round;
  }
}

TEST(AigIoBinary, ConstantAndPassThroughOutputs) {
  Aig aig;
  Lit a = make_lit(aig.add_pi("a"));
  aig.add_po(kLitTrue, "t");
  aig.add_po(kLitFalse, "f");
  aig.add_po(lit_not(a), "na");
  Aig back = read_aiger_binary(write_aiger_binary(aig));
  EXPECT_EQ(back.po(0), kLitTrue);
  EXPECT_EQ(back.po(1), kLitFalse);
  EXPECT_EQ(back.po(2), lit_not(make_lit(back.pis()[0])));
  EXPECT_EQ(back.po_name(2), "na");
}

TEST(AigIoBinary, TruncationThrowsOrPreservesFunction) {
  // Every prefix that cuts into the mandatory sections (header, PO lines,
  // delta codes) must throw. Prefixes that only cut the optional trailing
  // symbol table still parse — the names are shortened or dropped, but the
  // circuit itself must come back intact.
  Rng rng(37);
  Aig aig = testing::random_aig(4, 2, 25, rng);
  std::string bytes = write_aiger_binary(aig);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::string prefix = bytes.substr(0, len);
    try {
      Aig back = read_aiger_binary(prefix);
      EXPECT_TRUE(testing::functionally_equal(aig, back))
          << "prefix length " << len;
    } catch (const std::runtime_error&) {
      // The expected outcome for any structurally incomplete prefix.
    }
  }
  // The fully-stripped mandatory prefix (no symbol table at all) parses:
  // spot-check that truncation inside the delta section really does throw
  // by cutting one byte into it is covered above; here pin the boundary —
  // dropping the whole symbol table is legal.
  std::size_t symtab = bytes.find("i0 pi0\n");
  ASSERT_NE(symtab, std::string::npos);
  Aig stripped = read_aiger_binary(bytes.substr(0, symtab));
  EXPECT_TRUE(testing::functionally_equal(aig, stripped));
}

TEST(AigIoBinary, RejectsMalformedHeaders) {
  // ASCII format fed to the binary reader.
  EXPECT_THROW(read_aiger_binary("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"),
               std::runtime_error);
  // Latches unsupported.
  EXPECT_THROW(read_aiger_binary("aig 2 1 1 0 0\n"), std::runtime_error);
  // Non-contiguous numbering: m != i + a.
  EXPECT_THROW(read_aiger_binary("aig 5 2 0 1 1\n6\n"), std::runtime_error);
  // Fabricated counts larger than the input.
  EXPECT_THROW(read_aiger_binary("aig 4000000000 4000000000 0 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(read_aiger_binary("aig 2 1 0 4000000000 1\n"),
               std::runtime_error);
  // Non-numeric and missing tokens.
  EXPECT_THROW(read_aiger_binary("aig x 1 0 0 0\n"), std::runtime_error);
  EXPECT_THROW(read_aiger_binary("aig 1 1 0 0\n"), std::runtime_error);
  EXPECT_THROW(read_aiger_binary(""), std::runtime_error);
}

TEST(AigIoBinary, RejectsMalformedDeltas) {
  // Header declares one AND over one PI; craft bad delta pairs by hand.
  // Valid would be e.g. lhs=4 (var 2), rhs0=2, rhs1=2: delta0=2, delta1=0.
  std::string base = "aig 2 1 0 1 1\n4\n";
  // delta0 == 0 (AND output equals rhs0 — non-monotone numbering).
  EXPECT_THROW(read_aiger_binary(base + '\0' + '\0'), std::runtime_error);
  // delta0 > lhs (rhs0 would be negative).
  {
    std::string bad = base;
    bad.push_back(static_cast<char>(9));
    bad.push_back(static_cast<char>(0));
    EXPECT_THROW(read_aiger_binary(bad), std::runtime_error);
  }
  // delta1 > lhs - delta0 (rhs1 would be negative).
  {
    std::string bad = base;
    bad.push_back(static_cast<char>(1));
    bad.push_back(static_cast<char>(9));
    EXPECT_THROW(read_aiger_binary(bad), std::runtime_error);
  }
  // Unterminated (all-continuation) varint.
  {
    std::string bad = base + std::string(12, static_cast<char>(0x80));
    EXPECT_THROW(read_aiger_binary(bad), std::runtime_error);
  }
}

TEST(AigIoBinary, RejectsMalformedSymbolTable) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(aig.make_and(a, b));
  std::string bytes = write_aiger_binary(aig);
  // Unknown symbol prefix.
  EXPECT_THROW(read_aiger_binary(bytes + "x0 name\n"), std::runtime_error);
  // Symbol index out of range.
  EXPECT_THROW(read_aiger_binary(bytes + "i7 name\n"), std::runtime_error);
  EXPECT_THROW(read_aiger_binary(bytes + "o9 name\n"), std::runtime_error);
  // Comment section is tolerated and ignored.
  Aig back = read_aiger_binary(bytes + "c\nanything at all\n");
  EXPECT_TRUE(testing::functionally_equal(aig, back));
}

}  // namespace
}  // namespace emorphic
