#include "aig/aig_io.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace emorphic {
namespace {

TEST(AigIo, EquationRoundTrip) {
  Rng rng(21);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 50, rng);
    std::string text = write_equations(aig);
    Aig back = read_equations(text);
    EXPECT_EQ(back.num_pis(), aig.num_pis());
    EXPECT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_TRUE(testing::functionally_equal(aig, back));
  }
}

TEST(AigIo, EquationParserOperators) {
  const std::string text =
      "INORDER = a b c;\n"
      "OUTORDER = f g h;\n"
      "f = a & b | !c;\n"
      "g = (a | b) & (a ^ c);\n"
      "h = 1 & a | 0;\n";
  Aig aig = read_equations(text);
  EXPECT_EQ(aig.num_pis(), 3u);
  EXPECT_EQ(aig.num_pos(), 3u);
  Tt a = tt_var(0, 3), b = tt_var(1, 3), c = tt_var(2, 3);
  EXPECT_EQ(exhaustive_tt(aig, 0), ((a & b) | (~c & tt_mask(3))) & tt_mask(3));
  EXPECT_EQ(exhaustive_tt(aig, 1), ((a | b) & (a ^ c)) & tt_mask(3));
  EXPECT_EQ(exhaustive_tt(aig, 2), a);
}

TEST(AigIo, EquationParserComments) {
  const std::string text =
      "# a comment\nINORDER = x;\nOUTORDER = y;\n# more\ny = !x;\n";
  Aig aig = read_equations(text);
  EXPECT_EQ(exhaustive_tt(aig, 0), tt_not(tt_var(0, 1), 1));
}

TEST(AigIo, EquationErrors) {
  EXPECT_THROW(read_equations("INORDER = a;\nOUTORDER = f;\nf = b;\n"),
               std::runtime_error);  // undefined signal
  EXPECT_THROW(read_equations("INORDER = a;\nOUTORDER = f;\n"),
               std::runtime_error);  // undefined output
  EXPECT_THROW(read_equations("INORDER = a\n"), std::runtime_error);
}

TEST(AigIo, AigerRoundTrip) {
  Rng rng(23);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(5, 3, 40, rng);
    std::string text = write_aiger(aig);
    Aig back = read_aiger(text);
    EXPECT_EQ(back.num_pis(), aig.num_pis());
    EXPECT_EQ(back.num_pos(), aig.num_pos());
    EXPECT_TRUE(testing::functionally_equal(aig, back));
  }
}

TEST(AigIo, AigerHeaderValidation) {
  EXPECT_THROW(read_aiger("aig 1 1 0 0 0\n"), std::runtime_error);
  EXPECT_THROW(read_aiger("aag 2 1 1 0 0\n2\n"), std::runtime_error);  // latch
}

TEST(AigIo, AigerConstantOutputs) {
  Aig aig;
  aig.add_pi();
  aig.add_po(kLitTrue, "t");
  aig.add_po(kLitFalse, "f");
  Aig back = read_aiger(write_aiger(aig));
  EXPECT_EQ(back.po(0), kLitTrue);
  EXPECT_EQ(back.po(1), kLitFalse);
}

TEST(AigIo, EquationConstantOutputs) {
  Aig aig;
  aig.add_pi("a");
  aig.add_po(kLitTrue, "t");
  Aig back = read_equations(write_equations(aig));
  EXPECT_EQ(back.po(0), kLitTrue);
}

}  // namespace
}  // namespace emorphic
