#include "aig/cut.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "aig/sim.hpp"

namespace emorphic {
namespace {

TEST(Cut, TrivialCutsOnPis) {
  Aig aig;
  Var a = aig.add_pi();
  aig.add_po(make_lit(a));
  CutManager cuts(aig, CutParams{4, 8});
  ASSERT_EQ(cuts.cuts(a).size(), 1u);
  EXPECT_TRUE(cuts.cuts(a)[0].is_trivial(a));
  EXPECT_EQ(cuts.cuts(a)[0].tt, tt_var(0, 1));
}

TEST(Cut, SimpleAndHasFaninCut) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit f = aig.make_and(a, lit_not(b));
  aig.add_po(f);
  CutManager cuts(aig, CutParams{4, 8});
  const auto& cs = cuts.cuts(lit_var(f));
  // Expect the {a,b} cut plus the trivial cut.
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].size, 2u);
  // tt = a & !b with leaves sorted (a < b)
  EXPECT_EQ(cs[0].tt, tt_var(0, 2) & tt_not(tt_var(1, 2), 2));
  EXPECT_TRUE(cs[1].is_trivial(lit_var(f)));
}

TEST(Cut, SubsetDomination) {
  Cut small;
  small.size = 2;
  small.leaves[0] = 1;
  small.leaves[1] = 3;
  Cut big;
  big.size = 3;
  big.leaves[0] = 1;
  big.leaves[1] = 2;
  big.leaves[2] = 3;
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
}

TEST(Cut, CutSizeNeverExceedsK) {
  Rng rng(5);
  Aig aig = testing::random_aig(8, 3, 80, rng);
  for (unsigned k = 2; k <= 6; ++k) {
    CutManager cuts(aig, CutParams{k, 8});
    for (Var v = 1; v < aig.num_nodes(); ++v) {
      for (const Cut& c : cuts.cuts(v)) {
        EXPECT_LE(c.size, k);
      }
    }
  }
}

TEST(Cut, NumCutsRespected) {
  Rng rng(6);
  Aig aig = testing::random_aig(8, 3, 100, rng);
  CutManager cuts(aig, CutParams{4, 3});
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    EXPECT_LE(cuts.cuts(v).size(), 4u);  // 3 priority + 1 trivial
  }
}

/// Property: every cut's truth table agrees with simulation through the
/// cone — checked by plugging exhaustive leaf patterns into the cut leaves.
TEST(Cut, TruthTablesMatchSimulation) {
  Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(6, 2, 40, rng);
    CutManager cuts(aig, CutParams{4, 8});
    // Assign each variable its simulated 64-bit word on random inputs; then
    // check cut tts by evaluating leaves' words through the table.
    std::vector<std::uint64_t> pi_words(aig.num_pis());
    for (auto& w : pi_words) w = rng.next();
    auto value = simulate_words(aig, pi_words);
    for (Var v = 1; v < aig.num_nodes(); ++v) {
      if (!aig.is_and(v)) continue;
      for (const Cut& cut : cuts.cuts(v)) {
        std::uint64_t expect = value[v];
        std::uint64_t got = 0;
        for (unsigned bit = 0; bit < 64; ++bit) {
          unsigned minterm = 0;
          for (unsigned l = 0; l < cut.size; ++l) {
            minterm |= ((value[cut.leaves[l]] >> bit) & 1ull) << l;
          }
          got |= ((cut.tt >> minterm) & 1ull) << bit;
        }
        EXPECT_EQ(got, expect) << "node " << v << " cut size "
                               << static_cast<int>(cut.size);
      }
    }
  }
}

TEST(Cut, ConstantFaninFoldsIntoCutFunction) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  Lit f = aig.make_and(aig.make_and(a, b), aig.make_and(b, c));
  aig.add_po(f);
  CutManager cuts(aig, CutParams{4, 8});
  // The 3-leaf cut {a,b,c} computes a&b&c (b's sharing folds).
  bool found = false;
  for (const Cut& cut : cuts.cuts(lit_var(f))) {
    if (cut.size == 3) {
      EXPECT_EQ(cut.tt,
                tt_var(0, 3) & tt_var(1, 3) & tt_var(2, 3));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cut, RejectsInvalidCutSize) {
  // cut_size < 2 cannot cover an AND node and > kMaxCutSize overflows
  // Cut::leaves: both must throw in every build mode, not just assert.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(aig.make_and(a, b));
  EXPECT_THROW(CutManager(aig, CutParams{1, 8}), std::invalid_argument);
  EXPECT_THROW(CutManager(aig, CutParams{0, 8}), std::invalid_argument);
  EXPECT_THROW(CutManager(aig, CutParams{kMaxCutSize + 1, 8}),
               std::invalid_argument);
}

TEST(Cut, ArenaReuseMatchesFreshEnumeration) {
  // One arena carried across CutManagers (including a larger AIG in
  // between, so stale slots exist) must reproduce fresh-state cuts exactly.
  Rng rng(61);
  Aig big = testing::random_aig(8, 4, 120, rng);
  Aig small = testing::random_aig(6, 3, 40, rng);
  CutArena arena;
  CutManager warmup(big, CutParams{4, 8}, &arena);

  CutManager fresh(small, CutParams{4, 8});
  CutManager reused(small, CutParams{4, 8}, &arena);
  for (Var v = 0; v < small.num_nodes(); ++v) {
    const auto& a = fresh.cuts(v);
    const auto& b = reused.cuts(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].size, b[i].size);
      EXPECT_EQ(a[i].tt, b[i].tt);
      EXPECT_EQ(a[i].leaves, b[i].leaves);
    }
  }
}

}  // namespace
}  // namespace emorphic
