// Seeded-corruption battery for the invariant subsystem (src/check/): every
// validator must (a) accept the real structures the library builds and
// (b) reject each corruption class it guards against, naming the offending
// node/class in the message. Corruption is planted through the
// check::CheckProbe seam — the public APIs are deliberately unable to
// produce these states.

#include <gtest/gtest.h>

#include <string>

#include "../test_helpers.hpp"
#include "aig/aig.hpp"
#include "aig/choice.hpp"
#include "aig/cut.hpp"
#include "check/check.hpp"
#include "check/probe.hpp"
#include "check/validators.hpp"
#include "egraph/egraph.hpp"
#include "flow/pipeline.hpp"
#include "mapper/lut_mapper.hpp"
#include "util/rng.hpp"

namespace emorphic {
namespace {

using check::CheckProbe;

Aig small_aig() {
  Rng rng(7);
  return testing::random_aig(5, 3, 30, rng);
}

// --- check_aig ---------------------------------------------------------------

TEST(CheckAig, AcceptsRealAig) {
  Aig aig = small_aig();
  EXPECT_EQ(check::check_aig(aig), "");
  EXPECT_EQ(check::check_aig(aig.cleanup()), "");
}

TEST(CheckAig, RejectsCycle) {
  Aig aig = small_aig();
  // Re-point some AND node's fanin at itself: a 1-cycle no make_and call
  // could ever create.
  Var victim = 0;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_and(v)) victim = v;
  }
  ASSERT_NE(victim, 0u);
  CheckProbe::set_and_fanins(aig, victim, make_lit(victim), aig.fanin1(victim));
  std::string why = check::check_aig(aig);
  EXPECT_NE(why.find("node " + std::to_string(victim)), std::string::npos)
      << why;
  EXPECT_NE(why.find("topological order"), std::string::npos) << why;
}

TEST(CheckAig, RejectsNonCanonicalFanins) {
  Aig aig;
  Var a = aig.add_pi();
  Var b = aig.add_pi();
  Lit f = aig.make_and(make_lit(a), make_lit(b));
  aig.add_po(f);
  // Swap the fanins out of strash order.
  CheckProbe::set_and_fanins(aig, lit_var(f), make_lit(b), make_lit(a));
  std::string why = check::check_aig(aig);
  EXPECT_NE(why.find("node " + std::to_string(lit_var(f))), std::string::npos)
      << why;
  EXPECT_NE(why.find("canonical strash order"), std::string::npos) << why;
}

TEST(CheckAig, RejectsDanglingPoLiteral) {
  Aig aig = small_aig();
  aig.set_po(0, make_lit(aig.num_nodes() + 5));
  std::string why = check::check_aig(aig);
  EXPECT_NE(why.find("PO 0"), std::string::npos) << why;
}

TEST(CheckAig, RejectsAndCountDrift) {
  Aig aig = small_aig();
  ++CheckProbe::num_ands(aig);
  std::string why = check::check_aig(aig);
  EXPECT_NE(why.find("num_ands"), std::string::npos) << why;
}

// --- check_egraph ------------------------------------------------------------

EGraph small_egraph() {
  EGraph eg;
  EClassId a = eg.add_var(0);
  EClassId b = eg.add_var(1);
  EClassId ab = eg.add_and(a, b);
  EClassId ba = eg.add_or(b, a);
  eg.merge(ab, ba);
  eg.add_not(ab);
  eg.rebuild();
  return eg;
}

TEST(CheckEgraph, AcceptsRebuiltEgraph) {
  EGraph eg = small_egraph();
  EXPECT_EQ(check::check_egraph(eg), "");
}

TEST(CheckEgraph, RejectsStaleHashconsEntry) {
  EGraph eg = small_egraph();
  // Intern an e-node no live class holds: the bijection check must flag it
  // even though every live e-node still resolves fine.
  CheckProbe::hashcons(eg).insert(ENode::var(99), 0);
  std::string why = check::check_egraph(eg);
  EXPECT_NE(why.find("stale entry"), std::string::npos) << why;
}

TEST(CheckEgraph, RejectsDroppedHashconsEntry) {
  EGraph eg = small_egraph();
  const ENode victim = CheckProbe::class_nodes(eg, eg.find(0))[0];
  CheckProbe::hashcons(eg).erase(victim);
  std::string why = check::check_egraph(eg);
  EXPECT_NE(why.find("missing from hashcons"), std::string::npos) << why;
}

TEST(CheckEgraph, RejectsUncompressedUnionFind) {
  EGraph eg = small_egraph();
  std::vector<EClassId>& parent = CheckProbe::union_find(eg);
  // The fixture merged the AND and OR classes (2 and 3): one is a loser
  // whose parent link aims at the winner. Re-point the NOT class (the last
  // id; nothing references it as a child, so checks 1–3 stay quiet) at the
  // loser: a two-step chain the compression check must flag.
  EClassId loser = eg.find(2) == 2 ? 3 : 2;
  EClassId victim = static_cast<EClassId>(parent.size()) - 1;
  ASSERT_EQ(parent[victim], victim);
  parent[victim] = loser;
  std::string why = check::check_egraph(eg);
  EXPECT_NE(why.find("not compressed"), std::string::npos) << why;
}

// --- check_choices -----------------------------------------------------------

struct ChoiceFixture {
  Aig aig;
  AigChoices choices;
  Var rep = 0;
  Var alt = 0;
};

ChoiceFixture make_choice_fixture() {
  ChoiceFixture fx;
  Var a = fx.aig.add_pi();
  Var b = fx.aig.add_pi();
  Lit f = fx.aig.make_and(make_lit(a), make_lit(b));
  // A second structure over the same support: !(!a | !b) as its ring mate
  // (functional equivalence is not what check() verifies, structure is).
  Lit g = fx.aig.make_and(make_lit(a, true), make_lit(b, true));
  fx.aig.add_po(f);
  fx.rep = lit_var(f);
  fx.alt = lit_var(g);
  fx.choices = AigChoices(fx.aig.num_nodes());
  fx.choices.add_member(fx.rep, fx.alt, true);
  fx.choices.finalize(fx.aig);
  return fx;
}

TEST(CheckChoices, AcceptsFinalizedAnnotation) {
  ChoiceFixture fx = make_choice_fixture();
  EXPECT_EQ(check::check_choices(fx.aig, fx.choices), "");
}

TEST(CheckChoices, RejectsBrokenRingPhaseLink) {
  ChoiceFixture fx = make_choice_fixture();
  // Aim the member's repr literal at an unrelated variable: the ring says
  // one thing, the repr table another.
  CheckProbe::repr(fx.choices)[fx.alt] = make_lit(0, true);
  std::string why = check::check_choices(fx.aig, fx.choices);
  EXPECT_NE(why.find("ring member " + std::to_string(fx.alt)),
            std::string::npos)
      << why;
  EXPECT_NE(why.find("representative " + std::to_string(fx.rep)),
            std::string::npos)
      << why;
}

TEST(CheckChoices, RejectsScheduleViolatingRingEdge) {
  ChoiceFixture fx = make_choice_fixture();
  std::vector<Var>& order = CheckProbe::order(fx.choices);
  // Swap the representative ahead of its ring member.
  std::size_t rep_pos = 0, alt_pos = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == fx.rep) rep_pos = i;
    if (order[i] == fx.alt) alt_pos = i;
  }
  ASSERT_LT(alt_pos, rep_pos);
  std::swap(order[rep_pos], order[alt_pos]);
  std::string why = check::check_choices(fx.aig, fx.choices);
  EXPECT_FALSE(why.empty());
  EXPECT_NE(why.find("order schedules"), std::string::npos) << why;
}

// --- check_cuts --------------------------------------------------------------

TEST(CheckCuts, AcceptsRealEnumeration) {
  Aig aig = small_aig();
  CutManager cuts(aig, CutParams{});
  EXPECT_EQ(check::check_cuts(cuts), "");
}

TEST(CheckCuts, AcceptsChoiceAwareEnumeration) {
  ChoiceFixture fx = make_choice_fixture();
  CutManager cuts(fx.aig, fx.choices, CutParams{});
  EXPECT_EQ(check::check_cuts(cuts), "");
}

Var widest_cut_node(const Aig& aig, const CutManager& cuts) {
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    for (const Cut& cut : cuts.cuts(v)) {
      if (cut.size >= 2) return v;
    }
  }
  return 0;
}

TEST(CheckCuts, RejectsUnsortedLeaves) {
  Aig aig = small_aig();
  CutManager cuts(aig, CutParams{});
  Var victim = widest_cut_node(aig, cuts);
  ASSERT_NE(victim, 0u);
  for (Cut& cut : CheckProbe::cuts(cuts, victim)) {
    if (cut.size >= 2) {
      std::swap(cut.leaves[0], cut.leaves[1]);
      break;
    }
  }
  std::string why = check::check_cuts(cuts);
  EXPECT_NE(why.find("node " + std::to_string(victim)), std::string::npos)
      << why;
  EXPECT_NE(why.find("not sorted"), std::string::npos) << why;
}

TEST(CheckCuts, RejectsWrongTruthTable) {
  Aig aig = small_aig();
  CutManager cuts(aig, CutParams{});
  Var victim = widest_cut_node(aig, cuts);
  ASSERT_NE(victim, 0u);
  for (Cut& cut : CheckProbe::cuts(cuts, victim)) {
    if (cut.size >= 2) {
      cut.tt ^= 1;  // flip one minterm
      break;
    }
  }
  std::string why = check::check_cuts(cuts);
  EXPECT_NE(why.find("node " + std::to_string(victim)), std::string::npos)
      << why;
  EXPECT_NE(why.find("simulation"), std::string::npos) << why;
}

TEST(CheckCuts, RejectsDuplicateLeafSets) {
  Aig aig = small_aig();
  CutManager cuts(aig, CutParams{});
  Var victim = 0;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (cuts.cuts(v).size() >= 2) victim = v;
  }
  ASSERT_NE(victim, 0u);
  CheckProbe::duplicate_front_cut(cuts, victim);
  std::string why = check::check_cuts(cuts);
  EXPECT_NE(why.find("node " + std::to_string(victim)), std::string::npos)
      << why;
  EXPECT_NE(why.find("duplicate"), std::string::npos) << why;
}

// --- check_lut_network -------------------------------------------------------

TEST(CheckLutNetwork, AcceptsMappedNetwork) {
  Aig aig = small_aig();
  LutNetwork network = map_to_luts(aig);
  EXPECT_EQ(check::check_lut_network(network), "");
}

TEST(CheckLutNetwork, RejectsUseBeforeDefinition) {
  Aig aig = small_aig();
  LutNetwork network = map_to_luts(aig);
  std::vector<MappedLut>& luts = CheckProbe::luts(network);
  ASSERT_GE(luts.size(), 2u);
  // Feed the first LUT from the last LUT's output: emission order broken.
  luts.front().inputs[0] = luts.back().output;
  std::string why = check::check_lut_network(network);
  EXPECT_NE(why.find("LUT 0"), std::string::npos) << why;
  EXPECT_NE(why.find("before definition"), std::string::npos) << why;
}

TEST(CheckLutNetwork, RejectsDoubleDrivenNet) {
  Aig aig = small_aig();
  LutNetwork network = map_to_luts(aig);
  std::vector<MappedLut>& luts = CheckProbe::luts(network);
  ASSERT_GE(luts.size(), 2u);
  luts.back().output = luts.front().output;
  std::string why = check::check_lut_network(network);
  EXPECT_NE(why.find("driven twice"), std::string::npos) << why;
}

TEST(CheckLutNetwork, RejectsTruthTableSpill) {
  Aig aig = small_aig();
  LutNetwork network = map_to_luts(aig);
  std::vector<MappedLut>& luts = CheckProbe::luts(network);
  ASSERT_FALSE(luts.empty());
  MappedLut& lut = luts.front();
  lut.tt |= Tt{1} << (1u << lut.inputs.size());
  std::string why = check::check_lut_network(network);
  EXPECT_NE(why.find("spills"), std::string::npos) << why;
}

// --- EM_ASSERT tier ----------------------------------------------------------

#if EMORPHIC_ENABLE_ASSERTS
TEST(CheckMacros, MakeAndRejectsDeadLiteral) {
  Aig aig;
  aig.add_pi();
  EXPECT_THROW(aig.make_and(make_lit(50), kLitTrue), check::CheckError);
}

TEST(CheckMacros, AddPoRejectsDeadLiteral) {
  Aig aig;
  aig.add_pi();
  EXPECT_THROW(aig.add_po(make_lit(50)), check::CheckError);
}
#endif

// --- FlowParams::paranoia ----------------------------------------------------

TEST(Paranoia, FullFlowRunsCleanWithParanoiaOn) {
  Aig aig = small_aig();
  FlowParams params;
  params.paranoia = true;
  params.rounds = 1;
  params.rewrite.max_iterations = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 3;
  params.sa.num_threads = 1;
  FlowResult result = Pipeline::emorphic(params).run(aig, params);
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
}

TEST(Paranoia, CorruptInputAbortsTheFlowNamingTheBoundary) {
  Aig aig = small_aig();
  Var victim = 0;
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_and(v)) victim = v;
  }
  ASSERT_NE(victim, 0u);
  CheckProbe::set_and_fanins(aig, victim, make_lit(victim), aig.fanin1(victim));
  FlowParams params;
  params.paranoia = true;
  try {
    Pipeline::baseline(params).run(aig, params);
    FAIL() << "corrupt input must not survive paranoia validation";
  } catch (const check::CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("flow input"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find(std::to_string(victim)),
              std::string::npos)
        << error.what();
  }
}

TEST(Paranoia, OffByDefaultLeavesCorruptionUndetected) {
  // Documents the contract: without paranoia (and without EMORPHIC_CHECKS
  // call sites firing on this path) validation is opt-in.
  FlowParams params;
  EXPECT_FALSE(params.paranoia);
}

}  // namespace
}  // namespace emorphic
