#include "benchgen/scale.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "aig/aig_io.hpp"
#include "benchgen/arith.hpp"

namespace emorphic {
namespace {

TEST(Scale, TileCircuitMakesDisjointCopies) {
  Aig base = make_adder(4);
  Aig tiled = tile_circuit(base, 3);
  EXPECT_EQ(tiled.num_pis(), 3 * base.num_pis());
  EXPECT_EQ(tiled.num_pos(), 3 * base.num_pos());
  EXPECT_EQ(tiled.num_ands(), 3 * base.num_ands());
  // Tile names are suffixed so the copies stay distinguishable.
  EXPECT_EQ(tiled.pi_name(0), base.pi_name(0) + "_t0");
  EXPECT_EQ(tiled.pi_name(base.num_pis()), base.pi_name(0) + "_t1");
  EXPECT_THROW(tile_circuit(base, 0), std::invalid_argument);
}

TEST(Scale, TileCircuitPreservesPerTileFunction) {
  Rng rng(71);
  Aig base = testing::random_aig(5, 3, 30, rng);
  // One copy is the base circuit itself (same PI/PO order, renamed).
  EXPECT_TRUE(testing::functionally_equal(base, tile_circuit(base, 1)));
  // Tiling is deterministic: same input, same bytes.
  Aig a = tile_circuit(base, 3);
  Aig b = tile_circuit(base, 3);
  EXPECT_EQ(write_aiger_binary(a), write_aiger_binary(b));
}

TEST(Scale, TileToAndsReachesTheTarget) {
  Aig base = make_adder(6);
  Aig big = tile_to_ands(base, 5000);
  EXPECT_GE(big.num_ands(), 5000u);
  EXPECT_LT(big.num_ands(), 5000u + base.num_ands());
  // Degenerate targets still produce at least one copy.
  EXPECT_EQ(tile_to_ands(base, 0).num_ands(), base.num_ands());
  // A base with no ANDs can never reach a positive target.
  Aig wires;
  wires.add_po(make_lit(wires.add_pi()));
  EXPECT_THROW(tile_to_ands(wires, 10), std::invalid_argument);
}

}  // namespace
}  // namespace emorphic
