#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "benchgen/epfl.hpp"

namespace emorphic {
namespace {

/// Evaluate a word under an input assignment via simulation.
std::uint64_t eval_word(const Aig& aig, const std::vector<std::uint64_t>& pis,
                        unsigned out_start, unsigned out_bits, unsigned bit) {
  auto value = simulate_words(aig, pis);
  std::uint64_t result = 0;
  for (unsigned i = 0; i < out_bits; ++i) {
    Lit po = aig.po(out_start + i);
    std::uint64_t w = value[lit_var(po)];
    if (lit_is_compl(po)) w = ~w;
    result |= ((w >> bit) & 1ull) << i;
  }
  return result;
}

std::vector<std::uint64_t> word_inputs(std::uint64_t a, unsigned abits,
                                       std::uint64_t b, unsigned bbits) {
  std::vector<std::uint64_t> pis;
  for (unsigned i = 0; i < abits; ++i) {
    pis.push_back(((a >> i) & 1ull) ? ~0ull : 0ull);
  }
  for (unsigned i = 0; i < bbits; ++i) {
    pis.push_back(((b >> i) & 1ull) ? ~0ull : 0ull);
  }
  return pis;
}

TEST(BenchGen, AdderAddsCorrectly) {
  Aig adder = make_adder(8);
  Rng rng(201);
  for (int round = 0; round < 30; ++round) {
    std::uint64_t a = rng.next_below(256), b = rng.next_below(256);
    auto pis = word_inputs(a, 8, b, 8);
    std::uint64_t sum = eval_word(adder, pis, 0, 8, 0);
    std::uint64_t cout = eval_word(adder, pis, 8, 1, 0);
    EXPECT_EQ(sum | (cout << 8), a + b);
  }
}

TEST(BenchGen, MultiplierMultiplies) {
  Aig mult = make_multiplier(6);
  Rng rng(202);
  for (int round = 0; round < 30; ++round) {
    std::uint64_t a = rng.next_below(64), b = rng.next_below(64);
    auto pis = word_inputs(a, 6, b, 6);
    EXPECT_EQ(eval_word(mult, pis, 0, 12, 0), a * b);
  }
}

TEST(BenchGen, SquareSquares) {
  Aig square = make_square(6);
  Rng rng(203);
  for (int round = 0; round < 20; ++round) {
    std::uint64_t x = rng.next_below(64);
    auto pis = word_inputs(x, 6, 0, 0);
    EXPECT_EQ(eval_word(square, pis, 0, 12, 0), x * x);
  }
}

TEST(BenchGen, DividerDivides) {
  Aig div = make_divisor(8);
  Rng rng(204);
  for (int round = 0; round < 40; ++round) {
    std::uint64_t a = rng.next_below(256);
    std::uint64_t b = 1 + rng.next_below(255);
    auto pis = word_inputs(a, 8, b, 8);
    EXPECT_EQ(eval_word(div, pis, 0, 8, 0), a / b) << a << "/" << b;
    EXPECT_EQ(eval_word(div, pis, 8, 8, 0), a % b) << a << "%" << b;
  }
}

TEST(BenchGen, SqrtIsIntegerSquareRoot) {
  Aig sqrt_c = make_sqrt(8);
  for (std::uint64_t x = 0; x < 256; ++x) {
    auto pis = word_inputs(x, 8, 0, 0);
    std::uint64_t root = eval_word(sqrt_c, pis, 0, 4, 0);
    EXPECT_LE(root * root, x);
    EXPECT_GT((root + 1) * (root + 1), x);
    // remainder = x - root^2
    EXPECT_EQ(eval_word(sqrt_c, pis, 4, 8, 0), x - root * root);
  }
}

TEST(BenchGen, Log2IntegerPartIsMsbIndex) {
  Aig log_c = make_log2(8);
  for (std::uint64_t x = 1; x < 256; ++x) {
    auto pis = word_inputs(x, 8, 0, 0);
    std::uint64_t ip = eval_word(log_c, pis, 0, 3, 0);
    unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(x));
    EXPECT_EQ(ip, msb) << "x=" << x;
  }
}

TEST(BenchGen, SinIsMonotoneNearZeroAndBounded) {
  // The polynomial x - x^3/6-ish must stay <= x and be 0 at 0.
  Aig sin_c = make_sin(8);
  auto pis0 = word_inputs(0, 8, 0, 0);
  EXPECT_EQ(eval_word(sin_c, pis0, 0, 8, 0), 0u);
  Rng rng(206);
  for (int round = 0; round < 20; ++round) {
    std::uint64_t x = rng.next_below(256);
    auto pis = word_inputs(x, 8, 0, 0);
    EXPECT_LE(eval_word(sin_c, pis, 0, 8, 0), x);
  }
}

TEST(BenchGen, HypIsEuclideanNorm) {
  Aig hyp = make_hyp(6);
  Rng rng(207);
  for (int round = 0; round < 25; ++round) {
    std::uint64_t a = rng.next_below(64), b = rng.next_below(64);
    auto pis = word_inputs(a, 6, b, 6);
    std::uint64_t out = eval_word(hyp, pis, 0, 7, 0);
    std::uint64_t sum = a * a + b * b;
    EXPECT_LE(out * out, sum);
    EXPECT_GT((out + 1) * (out + 1), sum);
  }
}

TEST(BenchGen, ArbiterGrantsAtMostOne) {
  Aig arb = make_arbiter(8);
  Rng rng(208);
  std::vector<std::uint64_t> pis(16);
  for (int round = 0; round < 20; ++round) {
    std::uint64_t reqs = rng.next_below(256);
    std::uint64_t ptr_pos = rng.next_below(8);
    for (unsigned i = 0; i < 8; ++i) {
      pis[i] = ((reqs >> i) & 1ull) ? ~0ull : 0ull;
      pis[8 + i] = (i == ptr_pos) ? ~0ull : 0ull;
    }
    auto value = simulate_words(arb, pis);
    unsigned grants = 0;
    std::uint64_t granted_index = 9;
    for (unsigned i = 0; i < 8; ++i) {
      Lit po = arb.po(i);
      std::uint64_t w = value[lit_var(po)];
      if (lit_is_compl(po)) w = ~w;
      if (w & 1ull) {
        ++grants;
        granted_index = i;
      }
    }
    if (reqs == 0) {
      EXPECT_EQ(grants, 0u);
    } else {
      ASSERT_EQ(grants, 1u);
      // Round-robin: granted client is the first requester at/after ptr.
      for (unsigned k = 0; k < 8; ++k) {
        unsigned i = (static_cast<unsigned>(ptr_pos) + k) % 8;
        if ((reqs >> i) & 1ull) {
          EXPECT_EQ(granted_index, i);
          break;
        }
      }
    }
  }
}

TEST(BenchGen, MemCtrlGrantsRespectPriorityAndBusy) {
  Aig mc = make_mem_ctrl({});
  // All-zero inputs: no grants, no strobes asserted.
  std::vector<std::uint64_t> pis(mc.num_pis(), 0);
  auto value = simulate_words(mc, pis);
  for (std::uint32_t i = 0; i < mc.num_pos(); ++i) {
    if (mc.po_name(i).rfind("mgrant", 0) == 0) {
      Lit po = mc.po(i);
      std::uint64_t w = value[lit_var(po)];
      if (lit_is_compl(po)) w = ~w;
      EXPECT_EQ(w & 1ull, 0ull);
    }
  }
}

TEST(BenchGen, EpflRegistryProducesAllCircuits) {
  for (const auto& spec : epfl_specs()) {
    Aig aig = make_epfl(spec.name);
    EXPECT_GT(aig.num_ands(), 0u) << spec.name;
    EXPECT_GT(aig.num_pos(), 0u) << spec.name;
  }
  EXPECT_THROW(make_epfl("nonexistent"), std::invalid_argument);
  EXPECT_EQ(epfl_names().size(), 10u);
}

TEST(BenchGen, SizeOrderRoughlyMatchesPaper) {
  // hyp is the largest circuit and adder the smallest, as in Table III.
  Aig hyp = make_epfl("hyp");
  Aig adder = make_epfl("adder");
  for (const auto& spec : epfl_specs()) {
    Aig aig = make_epfl(spec.name);
    EXPECT_LE(adder.num_ands(), aig.num_ands()) << spec.name;
    EXPECT_GE(hyp.num_ands(), aig.num_ands()) << spec.name;
  }
}

}  // namespace
}  // namespace emorphic
