#include "opt/sop_balance.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"

namespace emorphic {
namespace {

TEST(SopBalance, PreservesFunctionRandom) {
  Rng rng(131);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 60, rng);
    Aig out = sop_balance(aig);
    EXPECT_TRUE(testing::functionally_equal(aig, out)) << round;
  }
}

TEST(SopBalance, ReducesDepthOfChain) {
  // A long AND chain collapses into K-input LUT layers.
  Aig aig;
  std::vector<Lit> pis;
  for (int i = 0; i < 24; ++i) pis.push_back(make_lit(aig.add_pi()));
  Lit acc = pis[0];
  for (int i = 1; i < 24; ++i) acc = aig.make_and(acc, pis[i]);
  aig.add_po(acc);
  Aig out = sop_balance(aig);
  EXPECT_TRUE(testing::functionally_equal(aig, out));
  // The 23-level chain collapses to a few LUT layers, each a balanced
  // factored AND tree (LUT-cover depth, not the global optimum of 5).
  EXPECT_LT(out.num_levels(), aig.num_levels());
  EXPECT_LE(out.num_levels(), 8u);
}

TEST(SopBalance, ImprovesAdderDepth) {
  Aig adder = make_adder(16);
  Aig out = sop_balance(adder);
  EXPECT_TRUE(testing::functionally_equal(adder, out));
  EXPECT_LT(out.num_levels(), adder.num_levels());
}

TEST(SopBalance, HandlesConstantsAndPassthrough) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  aig.add_po(kLitFalse, "zero");
  aig.add_po(a, "pass");
  aig.add_po(lit_not(a), "inv");
  Aig out = sop_balance(aig);
  EXPECT_TRUE(testing::functionally_equal(aig, out));
}

TEST(SopBalance, ParameterSweepPreservesFunction) {
  Rng rng(132);
  Aig aig = testing::random_aig(8, 3, 80, rng);
  for (unsigned k = 3; k <= 6; ++k) {
    SopBalanceParams params;
    params.cut_size = k;
    params.num_cuts = 8;
    Aig out = sop_balance(aig, params);
    EXPECT_TRUE(testing::functionally_equal(aig, out)) << "K=" << k;
  }
}

TEST(SopBalance, DepthNeverBlowsUp) {
  Rng rng(133);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(6, 3, 50, rng);
    Aig out = sop_balance(aig);
    // SOP balancing targets delay; allow small slack but no blow-up.
    EXPECT_LE(out.num_levels(), aig.num_levels() + 2);
  }
}

}  // namespace
}  // namespace emorphic
