#include "opt/balance.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace emorphic {
namespace {

TEST(Balance, ChainBecomesTree) {
  Aig aig;
  std::vector<Lit> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(make_lit(aig.add_pi()));
  Lit acc = pis[0];
  for (int i = 1; i < 8; ++i) acc = aig.make_and(acc, pis[i]);
  aig.add_po(acc);
  EXPECT_EQ(aig.num_levels(), 7u);
  Aig balanced = balance(aig);
  EXPECT_EQ(balanced.num_levels(), 3u);
  EXPECT_TRUE(testing::functionally_equal(aig, balanced));
}

TEST(Balance, NeverIncreasesDepthRandom) {
  Rng rng(81);
  for (int round = 0; round < 10; ++round) {
    Aig aig = testing::random_aig(6, 4, 60, rng);
    Aig balanced = balance(aig);
    EXPECT_LE(balanced.num_levels(), aig.num_levels());
    EXPECT_TRUE(testing::functionally_equal(aig, balanced)) << round;
  }
}

TEST(Balance, RespectsSharedNodes) {
  // A shared AND must remain a leaf of the enclosing trees, not be
  // duplicated into them.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  Lit shared = aig.make_and(a, b);
  aig.add_po(aig.make_and(shared, c));
  aig.add_po(aig.make_and(shared, lit_not(c)));
  Aig balanced = balance(aig);
  EXPECT_TRUE(testing::functionally_equal(aig, balanced));
  EXPECT_LE(balanced.num_ands(), aig.num_ands());
}

TEST(Balance, ComplementedEdgesAreBoundaries) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  Lit inner = aig.make_and(a, b);
  aig.add_po(aig.make_and(lit_not(inner), c));
  Aig balanced = balance(aig);
  EXPECT_TRUE(testing::functionally_equal(aig, balanced));
}

TEST(Balance, IdempotentOnBalancedTree) {
  Aig aig;
  std::vector<Lit> pis;
  for (int i = 0; i < 8; ++i) pis.push_back(make_lit(aig.add_pi()));
  aig.add_po(aig.make_and_n(pis));
  Aig once = balance(aig);
  Aig twice = balance(once);
  EXPECT_EQ(once.num_levels(), twice.num_levels());
  EXPECT_EQ(once.num_ands(), twice.num_ands());
}

TEST(Balance, ConstantAndPiOutputs) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  aig.add_po(kLitTrue);
  aig.add_po(lit_not(a));
  Aig balanced = balance(aig);
  EXPECT_EQ(balanced.po(0), kLitTrue);
  EXPECT_TRUE(testing::functionally_equal(aig, balanced));
}

}  // namespace
}  // namespace emorphic
