#include "opt/fraig.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/doubling.hpp"
#include "cec/cec.hpp"

namespace emorphic {
namespace {

TEST(Fraig, MergesDoubledAdderAndPreservesFunction) {
  Aig aig = doubled(make_adder(6));
  FraigStats stats;
  Aig swept = fraig(aig, {}, &stats);
  EXPECT_LT(swept.num_ands(), aig.num_ands());
  EXPECT_EQ(stats.ands_before, aig.num_ands());
  EXPECT_EQ(stats.ands_after, swept.num_ands());
  EXPECT_GT(stats.proved, 0u);
  EXPECT_EQ(swept.num_pis(), aig.num_pis());
  EXPECT_EQ(swept.num_pos(), aig.num_pos());
  EXPECT_EQ(cec(aig, swept).status, CecStatus::kEquivalent);
}

TEST(Fraig, RedirectsNodeEquivalentToPi) {
  // (a | b) & a == a: the whole cone collapses onto the PI.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(aig.make_and(aig.make_or(a, b), a));
  FraigStats stats;
  Aig swept = fraig(aig, {}, &stats);
  EXPECT_EQ(swept.num_ands(), 0u);
  EXPECT_EQ(swept.po(0), a);
  EXPECT_EQ(cec(aig, swept).status, CecStatus::kEquivalent);
}

TEST(Fraig, DetectsHiddenConstant) {
  // (a&b) & (a&!b) == 0, invisible to structural hashing.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit t1 = aig.make_and(a, b);
  Lit t2 = aig.make_and(a, lit_not(b));
  aig.add_po(aig.make_and(t1, t2));
  aig.add_po(lit_not(aig.make_and(t1, t2)));  // hidden constant 1
  Aig swept = fraig(aig);
  EXPECT_EQ(swept.num_ands(), 0u);
  EXPECT_EQ(swept.po(0), kLitFalse);
  EXPECT_EQ(swept.po(1), kLitTrue);
}

TEST(Fraig, MergesComplementEquivalentNodes) {
  // a^b and its xnor built via a mux: structurally distinct, one is the
  // complement of the other — the phase-handling path.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit x = aig.make_xor(a, b);
  Lit xn = aig.make_mux(a, b, lit_not(b));  // a?b:!b == xnor(a,b)
  aig.add_po(x);
  aig.add_po(xn);
  FraigStats stats;
  Aig swept = fraig(aig, {}, &stats);
  EXPECT_LT(swept.num_ands(), aig.num_ands());
  EXPECT_EQ(cec(aig, swept).status, CecStatus::kEquivalent);
  // The two POs must come out as complements of one shared cone.
  EXPECT_EQ(lit_var(swept.po(0)), lit_var(swept.po(1)));
  EXPECT_NE(swept.po(0), swept.po(1));
}

TEST(Fraig, NaiveAndGuidedSweepsAgree) {
  Aig aig = doubled(make_adder(4));
  // Uncapped on both sides: the equality invariant only holds for complete
  // sweeps (naive has no class-size cap).
  FraigParams guided_params;
  guided_params.conflict_limit = 0;
  guided_params.max_class_size = static_cast<std::size_t>(-1);
  FraigParams naive_params;
  naive_params.use_simulation = false;
  naive_params.conflict_limit = 0;
  FraigStats guided_stats, naive_stats;
  Aig guided = fraig(aig, guided_params, &guided_stats);
  Aig naive = fraig(aig, naive_params, &naive_stats);
  EXPECT_EQ(guided.num_ands(), naive.num_ands());
  EXPECT_EQ(guided_stats.proved, naive_stats.proved);
  EXPECT_LT(guided_stats.sat_calls, naive_stats.sat_calls)
      << "simulation must prune the candidate pairs";
  EXPECT_EQ(cec(aig, guided).status, CecStatus::kEquivalent);
  EXPECT_EQ(cec(aig, naive).status, CecStatus::kEquivalent);
}

TEST(Fraig, ParallelSimulationDoesNotChangeTheResult) {
  Aig aig = doubled(make_adder(8));
  FraigParams serial;
  FraigParams threaded = serial;
  threaded.num_threads = 4;
  FraigStats s1, s2;
  Aig r1 = fraig(aig, serial, &s1);
  Aig r2 = fraig(aig, threaded, &s2);
  EXPECT_EQ(r1.num_ands(), r2.num_ands());
  EXPECT_EQ(s1.proved, s2.proved);
}

TEST(Fraig, ConflictLimitLeavesPairsUndecidedButSound) {
  Aig aig = doubled(make_multiplier(4));
  FraigParams params;
  params.conflict_limit = 1;  // almost everything non-trivial times out
  FraigStats stats;
  Aig swept = fraig(aig, params, &stats);
  EXPECT_EQ(cec(aig, swept).status, CecStatus::kEquivalent);
  EXPECT_GT(stats.undecided, 0u);
}

TEST(Fraig, MaxClassSizeSkipsOversizedClasses) {
  Aig aig = doubled(make_adder(6));
  FraigParams params;
  params.max_class_size = 1;  // degenerate: every real class is oversized
  FraigStats stats;
  Aig swept = fraig(aig, params, &stats);
  EXPECT_EQ(swept.num_ands(), aig.num_ands());
  EXPECT_GT(stats.skipped_class_nodes, 0u);
  EXPECT_EQ(stats.sat_calls, 0u);
}

TEST(Fraig, HandlesConstantOnlyAndTrivialCircuits) {
  Aig constants;
  constants.add_po(kLitTrue);
  constants.add_po(kLitFalse);
  Aig swept = fraig(constants);
  EXPECT_EQ(swept.num_ands(), 0u);
  EXPECT_EQ(swept.po(0), kLitTrue);
  EXPECT_EQ(swept.po(1), kLitFalse);

  Aig passthrough;
  Lit a = make_lit(passthrough.add_pi());
  passthrough.add_po(lit_not(a));
  Aig swept2 = fraig(passthrough);
  EXPECT_EQ(swept2.po(0), lit_not(a));
}

TEST(Fraig, CounterexampleReplaySplitsFalseCandidates) {
  // AND over 16 PIs is 0 on all but one of 2^16 assignments: random
  // simulation (a few hundred patterns) almost surely groups it with
  // constant 0, so only a SAT counterexample — replayed as a simulation
  // pattern — separates the false candidates. Deterministic under the
  // default FraigParams seed.
  Aig aig;
  std::vector<Lit> lits;
  for (int i = 0; i < 16; ++i) lits.push_back(make_lit(aig.add_pi()));
  aig.add_po(aig.make_and_n(lits));
  FraigStats stats;
  Aig swept = fraig(aig, {}, &stats);
  EXPECT_EQ(cec(aig, swept).status, CecStatus::kEquivalent);
  EXPECT_EQ(swept.num_ands(), aig.num_ands()) << "nothing actually merges";
  EXPECT_GT(stats.refuted, 0u);
  EXPECT_GT(stats.cex_replays, 0u);
}

TEST(Fraig, RandomCircuitsStayEquivalent) {
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    Aig aig = testing::random_aig(6, 4, 80, rng);
    FraigParams params;
    params.seed = 1000 + static_cast<std::uint64_t>(round);
    Aig swept = fraig(aig, params);
    EXPECT_LE(swept.num_ands(), aig.num_ands());
    ASSERT_EQ(cec(aig, swept).status, CecStatus::kEquivalent)
        << "round " << round;
  }
}

}  // namespace
}  // namespace emorphic
