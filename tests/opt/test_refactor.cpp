#include "opt/refactor.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "opt/resyn.hpp"

namespace emorphic {
namespace {

TEST(Refactor, PreservesFunctionRandom) {
  Rng rng(121);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(6, 4, 60, rng);
    Aig out = refactor(aig);
    EXPECT_TRUE(testing::functionally_equal(aig, out)) << round;
    EXPECT_LE(out.num_ands(), aig.num_ands());
  }
}

TEST(Refactor, ReducesRedundantCone) {
  // f = (a&b) | (a&c): naive structure uses 3 ANDs; factoring finds a&(b|c).
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  aig.add_po(aig.make_or(aig.make_and(a, b), aig.make_and(a, c)));
  Aig out = refactor(aig);
  EXPECT_TRUE(testing::functionally_equal(aig, out));
  EXPECT_LE(out.num_ands(), aig.num_ands());
}

TEST(Refactor, NeverIncreasesSize) {
  Rng rng(122);
  for (int round = 0; round < 8; ++round) {
    Aig aig = testing::random_aig(8, 4, 120, rng);
    EXPECT_LE(refactor(aig).num_ands(), aig.num_ands());
  }
}

TEST(Resyn, ScriptsPreserveFunction) {
  Rng rng(123);
  for (int round = 0; round < 6; ++round) {
    Aig aig = testing::random_aig(6, 3, 70, rng);
    EXPECT_TRUE(testing::functionally_equal(aig, strash(aig)));
    EXPECT_TRUE(testing::functionally_equal(aig, resyn(aig)));
    EXPECT_TRUE(testing::functionally_equal(aig, dch_substitute(aig)));
  }
}

TEST(Resyn, DchSubstituteDoesNotGrow) {
  Rng rng(124);
  for (int round = 0; round < 6; ++round) {
    Aig aig = testing::random_aig(7, 3, 90, rng);
    EXPECT_LE(dch_substitute(aig).num_ands(), aig.num_ands() + 2);
  }
}

}  // namespace
}  // namespace emorphic
