#include "opt/sop.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "aig/sim.hpp"

namespace emorphic {
namespace {

TEST(Isop, ConstantsAndLiterals) {
  EXPECT_TRUE(isop(0, 3).empty());
  Sop taut = isop(tt_mask(3), 3);
  ASSERT_EQ(taut.size(), 1u);
  EXPECT_EQ(taut[0].num_lits(), 0u);
  Sop lit = isop(tt_var(1, 3), 3);
  ASSERT_EQ(lit.size(), 1u);
  EXPECT_EQ(lit[0].pos, 1u << 1);
  EXPECT_EQ(lit[0].neg, 0u);
}

/// Property sweep: ISOP reproduces the original function for random tables
/// over 2..6 inputs, and is irredundant enough to be cube-minimal-ish
/// (every cube covers at least one minterm no other cube covers).
class IsopSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(IsopSweep, RoundTripAndIrredundance) {
  unsigned n = GetParam();
  Rng rng(90 + n);
  for (int round = 0; round < 40; ++round) {
    Tt f = rng.next() & tt_mask(n);
    Sop sop = isop(f, n);
    EXPECT_EQ(sop_to_tt(sop, n), f);
    // Irredundance: dropping any cube changes the function.
    for (std::size_t k = 0; k < sop.size(); ++k) {
      Sop reduced = sop;
      reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(k));
      EXPECT_NE(sop_to_tt(reduced, n), f) << "redundant cube in " << sop_to_string(sop, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IsopSweep, ::testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(Isop, XorNeedsFourCubes) {
  unsigned n = 3;
  Tt f = (tt_var(0, n) ^ tt_var(1, n) ^ tt_var(2, n)) & tt_mask(n);
  Sop sop = isop(f, n);
  EXPECT_EQ(sop.size(), 4u);  // odd-parity minterms of 3 vars
  EXPECT_EQ(sop_to_tt(sop, n), f);
}

TEST(Factor, SingleCube) {
  Sop sop{Cube{0b011, 0b100}};  // a b c'
  FactoredForm form = factor(sop);
  EXPECT_EQ(form.num_lits(), 3u);
}

TEST(Factor, ExtractsCommonLiteral) {
  // ab + ac -> a(b+c): 3 literals instead of 4.
  Sop sop{Cube{0b011, 0}, Cube{0b101, 0}};
  FactoredForm form = factor(sop);
  EXPECT_EQ(form.num_lits(), 3u);
}

TEST(Factor, ConstantForms) {
  FactoredForm zero = factor({});
  EXPECT_TRUE(zero.nodes.empty());
  EXPECT_FALSE(zero.const_value);
  FactoredForm one = factor({Cube{}});
  EXPECT_TRUE(one.nodes.empty());
  EXPECT_TRUE(one.const_value);
}

/// Property: factoring preserves the function (verified by rebuilding the
/// factored form as an AIG and comparing truth tables).
class FactorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FactorSweep, FactoredFormMatchesFunction) {
  unsigned n = GetParam();
  Rng rng(100 + n);
  for (int round = 0; round < 30; ++round) {
    Tt f = rng.next() & tt_mask(n);
    Sop sop = isop(f, n);
    FactoredForm form = factor(sop);
    Aig aig;
    std::vector<Lit> leaves;
    for (unsigned i = 0; i < n; ++i) leaves.push_back(make_lit(aig.add_pi()));
    std::vector<double> arrival(n, 0.0);
    Lit out = build_factored(aig, form, leaves, arrival);
    aig.add_po(out);
    EXPECT_EQ(exhaustive_tt(aig, 0), f) << sop_to_string(sop, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FactorSweep, ::testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(Factor, NeverMoreLiteralsThanSop) {
  Rng rng(111);
  for (int round = 0; round < 50; ++round) {
    Tt f = rng.next() & tt_mask(5);
    Sop sop = isop(f, 5);
    if (sop.empty()) continue;
    FactoredForm form = factor(sop);
    EXPECT_LE(form.num_lits(), sop_num_lits(sop));
  }
}

TEST(BuildSop, DirectConstruction) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Tt f = (tt_var(0, 2) | tt_var(1, 2)) & tt_mask(2);
  aig.add_po(build_sop(aig, f, 2, {a, b}));
  EXPECT_EQ(exhaustive_tt(aig, 0), f);
}

TEST(BuildFactored, ArrivalAwarePairing) {
  // With one late input, the balanced build must keep it near the root:
  // depth seen from the late input is 1 level, not log2(n).
  Aig aig;
  std::vector<Lit> leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(make_lit(aig.add_pi()));
  Sop sop;  // single cube of 8... cube supports only 6 vars; use 6.
  leaves.resize(6);
  Cube cube;
  cube.pos = 0x3f;
  sop.push_back(cube);
  FactoredForm form = factor(sop);
  std::vector<double> arrival(6, 0.0);
  arrival[3] = 10.0;  // late
  Lit out = build_factored(aig, form, leaves, arrival);
  aig.add_po(out);
  // The late leaf must feed the final AND directly: its fanout node is the PO.
  auto levels = aig.levels();
  Var root = lit_var(out);
  Var late = lit_var(leaves[3]);
  bool direct = lit_var(aig.fanin0(root)) == late || lit_var(aig.fanin1(root)) == late;
  EXPECT_TRUE(direct);
  // The 5 early inputs balance to depth 3; the late input adds one level.
  EXPECT_EQ(levels[root], 4u);
}

}  // namespace
}  // namespace emorphic
