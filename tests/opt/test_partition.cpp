#include "opt/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "../test_helpers.hpp"
#include "aig/aig_io.hpp"
#include "cec/cec.hpp"
#include "egraph/snapshot.hpp"

namespace emorphic {
namespace {

// Test parameters with every wall-clock budget disabled: the partition
// determinism contract only holds when no limit depends on elapsed time.
PartitionParams test_params(std::uint32_t window_size, std::uint64_t seed) {
  PartitionParams p;
  p.window_size = window_size;
  p.seed = seed;
  p.rewrite.max_iterations = 2;
  p.rewrite.max_enodes = 2000;
  p.rewrite.time_limit_s = 1e9;
  return p;
}

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + "emorphic_" + name + ".empc";
  std::remove(path.c_str());
  return path;
}

TEST(Partition, AssignWindowsInvariants) {
  Rng rng(51);
  for (std::uint32_t window_size : {1u, 7u, 50u, 1000u}) {
    Aig aig = testing::random_aig(8, 4, 150, rng);
    WindowAssignment a = assign_windows(aig, window_size);
    ASSERT_EQ(a.window_of.size(), aig.num_nodes());
    std::vector<std::size_t> fill(a.num_windows, 0);
    for (Var v = 0; v < aig.num_nodes(); ++v) {
      if (!aig.is_and(v)) {
        EXPECT_EQ(a.window_of[v], kNoWindow);
        continue;
      }
      std::uint32_t w = a.window_of[v];
      ASSERT_LT(w, a.num_windows);
      ++fill[w];
      // The acyclicity invariant: a fanin's window never exceeds its
      // fanout's, so stitching in ascending window order is well-defined.
      for (Lit f : {aig.fanin0(v), aig.fanin1(v)}) {
        std::uint32_t fw = a.window_of[lit_var(f)];
        if (fw != kNoWindow) EXPECT_LE(fw, w);
      }
    }
    for (std::size_t f : fill) {
      EXPECT_GT(f, 0u);
      EXPECT_LE(f, window_size);
    }
  }
}

TEST(Partition, AssignWindowsDegenerateSizes) {
  Rng rng(52);
  Aig aig = testing::random_aig(6, 3, 80, rng);
  EXPECT_THROW(assign_windows(aig, 0), std::invalid_argument);
  // Per-node windows.
  WindowAssignment ones = assign_windows(aig, 1);
  EXPECT_EQ(ones.num_windows, aig.num_ands());
  // One whole-circuit window.
  WindowAssignment whole =
      assign_windows(aig, static_cast<std::uint32_t>(aig.num_ands()) + 10);
  EXPECT_EQ(whole.num_windows, 1u);
  // No ANDs at all: no windows.
  Aig trivial;
  trivial.add_po(make_lit(trivial.add_pi()));
  EXPECT_EQ(assign_windows(trivial, 4).num_windows, 0u);
}

TEST(Partition, BuildWindowsInterfaces) {
  Rng rng(53);
  Aig aig = testing::random_aig(8, 4, 120, rng);
  WindowAssignment a = assign_windows(aig, 20);
  std::vector<Window> windows = build_windows(aig, a);
  ASSERT_EQ(windows.size(), a.num_windows);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const Window& win = windows[w];
    EXPECT_TRUE(std::is_sorted(win.members.begin(), win.members.end()));
    EXPECT_TRUE(std::is_sorted(win.inputs.begin(), win.inputs.end()));
    EXPECT_TRUE(std::is_sorted(win.outputs.begin(), win.outputs.end()));
    for (Var m : win.members) EXPECT_EQ(a.window_of[m], w);
    for (Var in : win.inputs) {
      EXPECT_NE(in, 0u);  // const0 is never a boundary input
      EXPECT_NE(a.window_of[in], static_cast<std::uint32_t>(w));
      if (a.window_of[in] != kNoWindow) EXPECT_LT(a.window_of[in], w);
    }
    for (Var out : win.outputs) {
      EXPECT_TRUE(std::binary_search(win.members.begin(), win.members.end(),
                                     out));
    }
  }
  // Every AND var feeding a PO is an output of its window.
  for (Lit po : aig.pos()) {
    Var pv = lit_var(po);
    std::uint32_t w = a.window_of[pv];
    if (w == kNoWindow) continue;
    EXPECT_TRUE(std::binary_search(windows[w].outputs.begin(),
                                   windows[w].outputs.end(), pv));
  }
}

TEST(Partition, ExtractWindowShapesMatchInterfaces) {
  Rng rng(54);
  Aig aig = testing::random_aig(8, 4, 120, rng);
  WindowAssignment a = assign_windows(aig, 20);
  for (const Window& win : build_windows(aig, a)) {
    Aig sub = extract_window(aig, win);
    EXPECT_EQ(sub.num_pis(), win.inputs.size());
    EXPECT_EQ(sub.num_pos(), win.outputs.size());
    EXPECT_LE(sub.num_ands(), win.members.size());
  }
}

TEST(Partition, OptimizePreservesFunction) {
  Rng rng(55);
  Aig aig = testing::random_aig(8, 4, 200, rng);
  PartitionResult r = partition_optimize(aig, test_params(25, 5));
  ASSERT_TRUE(r.stats.completed);
  EXPECT_EQ(r.stats.num_windows, r.stats.windows_adopted +
                                     r.stats.windows_rejected_qor +
                                     r.stats.windows_rejected_cec);
  // Rebuild-stitching strashes across seams, so the result never grows.
  EXPECT_LE(r.stats.ands_after, r.stats.ands_before);
  EXPECT_TRUE(testing::functionally_equal(aig, r.optimized));
  EXPECT_EQ(cec(aig, r.optimized).status, CecStatus::kEquivalent);
}

TEST(Partition, OptimizeDegenerateWindowSizes) {
  Rng rng(56);
  Aig aig = testing::random_aig(6, 3, 60, rng);
  // Per-node windows: nothing shrinks below one AND, but the flow must
  // complete and preserve the function.
  PartitionResult ones = partition_optimize(aig, test_params(1, 3));
  ASSERT_TRUE(ones.stats.completed);
  EXPECT_EQ(cec(aig, ones.optimized).status, CecStatus::kEquivalent);
  // One whole-circuit window.
  PartitionResult whole = partition_optimize(
      aig, test_params(static_cast<std::uint32_t>(aig.num_ands()) + 1, 3));
  ASSERT_TRUE(whole.stats.completed);
  EXPECT_EQ(whole.stats.num_windows, 1u);
  EXPECT_EQ(cec(aig, whole.optimized).status, CecStatus::kEquivalent);
}

TEST(Partition, BitIdenticalAcrossThreadCounts) {
  // The tentpole determinism claim: same circuit, seed and window size give
  // a byte-identical stitched netlist at any worker count, including an
  // oversubscribed pool.
  Rng rng(57);
  Aig aig = testing::random_aig(8, 4, 300, rng);
  std::string reference;
  PartitionStats ref_stats;
  for (unsigned threads : {1u, 2u, 4u, 8u, 32u}) {
    PartitionParams p = test_params(30, 7);
    p.num_threads = threads;
    PartitionResult r = partition_optimize(aig, p);
    ASSERT_TRUE(r.stats.completed) << threads << " threads";
    std::string bytes = write_aiger_binary(r.optimized);
    if (reference.empty()) {
      reference = bytes;
      ref_stats = r.stats;
    } else {
      EXPECT_EQ(bytes, reference) << threads << " threads";
      EXPECT_EQ(r.stats.windows_adopted, ref_stats.windows_adopted);
      EXPECT_EQ(r.stats.windows_rejected_qor, ref_stats.windows_rejected_qor);
      EXPECT_EQ(r.stats.windows_rejected_cec, ref_stats.windows_rejected_cec);
      EXPECT_EQ(r.stats.ands_after, ref_stats.ands_after);
    }
  }
}

TEST(Partition, SeedChangesAreIsolatedToResults) {
  // Different seeds may optimize differently but must both be equivalent.
  Rng rng(58);
  Aig aig = testing::random_aig(8, 4, 200, rng);
  PartitionResult a = partition_optimize(aig, test_params(25, 1));
  PartitionResult b = partition_optimize(aig, test_params(25, 2));
  ASSERT_TRUE(a.stats.completed && b.stats.completed);
  EXPECT_EQ(cec(aig, a.optimized).status, CecStatus::kEquivalent);
  EXPECT_EQ(cec(aig, b.optimized).status, CecStatus::kEquivalent);
}

TEST(Partition, ResumeMatchesUninterruptedRun) {
  // Kill after the first chunk, resume, and require the exact bytes of the
  // straight-through run — the checkpoint replays recorded windows rather
  // than recomputing them, so any normalization gap would show here.
  Rng rng(59);
  Aig aig = testing::random_aig(8, 4, 260, rng);
  PartitionParams base = test_params(8, 9);  // > 16 windows -> >= 2 chunks

  PartitionResult straight = partition_optimize(aig, base);
  ASSERT_TRUE(straight.stats.completed);
  ASSERT_GE(straight.stats.chunks_total, 2u);
  std::string want = write_aiger_binary(straight.optimized);

  std::string path = temp_path("resume");
  PartitionParams first = base;
  first.checkpoint_path = path;
  first.stop_after_chunks = 1;
  PartitionResult partial = partition_optimize(aig, first);
  EXPECT_FALSE(partial.stats.completed);

  PartitionParams second = base;
  second.checkpoint_path = path;
  PartitionResult resumed = partition_optimize(aig, second);
  ASSERT_TRUE(resumed.stats.completed);
  EXPECT_EQ(resumed.stats.chunks_resumed, 1u);
  EXPECT_EQ(write_aiger_binary(resumed.optimized), want);
  std::remove(path.c_str());
}

TEST(Partition, ResumeFromCompleteCheckpointRecomputesNothing) {
  Rng rng(60);
  Aig aig = testing::random_aig(8, 4, 200, rng);
  std::string path = temp_path("complete");
  PartitionParams p = test_params(10, 11);
  p.checkpoint_path = path;
  PartitionResult first = partition_optimize(aig, p);
  ASSERT_TRUE(first.stats.completed);
  PartitionResult again = partition_optimize(aig, p);
  ASSERT_TRUE(again.stats.completed);
  EXPECT_EQ(again.stats.chunks_resumed, again.stats.chunks_total);
  EXPECT_EQ(write_aiger_binary(again.optimized),
            write_aiger_binary(first.optimized));
  std::remove(path.c_str());
}

TEST(Partition, CheckpointFingerprintMismatchThrows) {
  Rng rng(61);
  Aig aig = testing::random_aig(8, 4, 200, rng);
  std::string path = temp_path("fingerprint");
  PartitionParams p = test_params(10, 13);
  p.checkpoint_path = path;
  p.stop_after_chunks = 1;
  (void)partition_optimize(aig, p);
  // Same circuit, different seed: the recorded windows no longer apply.
  PartitionParams other = test_params(10, 14);
  other.checkpoint_path = path;
  EXPECT_THROW(partition_optimize(aig, other), SnapshotError);
  // Different circuit under the original seed: also refused.
  Aig changed = testing::random_aig(8, 4, 200, rng);
  EXPECT_THROW(partition_optimize(changed, p), SnapshotError);
  std::remove(path.c_str());
}

TEST(Partition, TornCheckpointTailIsTruncatedAndRecomputed) {
  Rng rng(62);
  Aig aig = testing::random_aig(8, 4, 260, rng);
  PartitionParams base = test_params(8, 15);
  std::string want;
  {
    PartitionResult straight = partition_optimize(aig, base);
    ASSERT_TRUE(straight.stats.completed);
    want = write_aiger_binary(straight.optimized);
  }
  std::string path = temp_path("torn");
  PartitionParams p = base;
  p.checkpoint_path = path;
  ASSERT_TRUE(partition_optimize(aig, p).stats.completed);

  // Tear the file mid-record (drop the last 3 bytes), as a crash during
  // append would. The resumed run must truncate to the valid prefix and
  // recompute the rest, landing on the same bytes.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(data.size(), 3u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() - 3));
  }
  PartitionResult resumed = partition_optimize(aig, p);
  ASSERT_TRUE(resumed.stats.completed);
  EXPECT_LT(resumed.stats.chunks_resumed, resumed.stats.chunks_total);
  EXPECT_EQ(write_aiger_binary(resumed.optimized), want);

  // Trailing garbage after valid records is likewise discarded.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("garbage", 7);
  }
  PartitionResult cleaned = partition_optimize(aig, p);
  ASSERT_TRUE(cleaned.stats.completed);
  EXPECT_EQ(write_aiger_binary(cleaned.optimized), want);
  std::remove(path.c_str());
}

TEST(Partition, CancelStopsBetweenChunks) {
  Rng rng(63);
  Aig aig = testing::random_aig(8, 4, 200, rng);
  std::atomic<bool> cancel{true};
  PartitionParams p = test_params(10, 17);
  p.cancel = &cancel;
  PartitionResult r = partition_optimize(aig, p);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_EQ(r.optimized.num_pos(), 0u);
}

}  // namespace
}  // namespace emorphic
