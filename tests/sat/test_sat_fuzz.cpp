// Randomized SAT-solver validation: every answer is checked against a
// brute-force oracle on small instances, and every model is verified to
// satisfy every clause.

#include <gtest/gtest.h>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace emorphic::sat {
namespace {

struct Instance {
  unsigned num_vars;
  std::vector<std::vector<SatLit>> clauses;
};

Instance random_instance(Rng& rng, unsigned num_vars, unsigned num_clauses,
                         unsigned width) {
  Instance inst;
  inst.num_vars = num_vars;
  for (unsigned c = 0; c < num_clauses; ++c) {
    std::vector<SatLit> clause;
    unsigned k = 1 + rng.next_below(width);
    for (unsigned j = 0; j < k; ++j) {
      clause.push_back(sat_lit(static_cast<SatVar>(rng.next_below(num_vars)),
                               rng.chance(0.5)));
    }
    inst.clauses.push_back(std::move(clause));
  }
  return inst;
}

bool brute_force_sat(const Instance& inst) {
  for (std::uint64_t m = 0; m < (1ull << inst.num_vars); ++m) {
    bool all = true;
    for (const auto& clause : inst.clauses) {
      bool any = false;
      for (SatLit l : clause) {
        bool value = ((m >> sat_var(l)) & 1ull) != 0;
        if (value != sat_sign(l)) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class SatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SatFuzz, AgreesWithBruteForceAndModelsAreValid) {
  Rng rng(9000 + GetParam());
  for (int round = 0; round < 30; ++round) {
    unsigned num_vars = 4 + static_cast<unsigned>(rng.next_below(10));
    unsigned num_clauses =
        static_cast<unsigned>(num_vars * (2.0 + 3.0 * rng.next_double()));
    Instance inst = random_instance(rng, num_vars, num_clauses, 3);

    Solver solver;
    solver.new_vars(num_vars);
    for (const auto& clause : inst.clauses) solver.add_clause(clause);
    SatResult result = solver.solve();
    bool expect = brute_force_sat(inst);
    ASSERT_EQ(result == SatResult::kSat, expect)
        << "disagrees with brute force (round " << round << ")";

    if (result == SatResult::kSat) {
      for (const auto& clause : inst.clauses) {
        bool any = false;
        for (SatLit l : clause) {
          if (solver.model_value(sat_var(l)) != sat_sign(l)) {
            any = true;
            break;
          }
        }
        EXPECT_TRUE(any) << "model violates a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatFuzz, ::testing::Range(0, 8));

TEST(SatFuzz, WideClausesAndUnits) {
  Rng rng(9901);
  for (int round = 0; round < 20; ++round) {
    unsigned num_vars = 6 + static_cast<unsigned>(rng.next_below(6));
    Instance inst = random_instance(rng, num_vars, num_vars * 3, 6);
    // Sprinkle unit clauses to exercise top-level propagation.
    inst.clauses.push_back({sat_lit(0, rng.chance(0.5))});
    Solver solver;
    solver.new_vars(num_vars);
    for (const auto& clause : inst.clauses) solver.add_clause(clause);
    EXPECT_EQ(solver.solve() == SatResult::kSat, brute_force_sat(inst));
  }
}

}  // namespace
}  // namespace emorphic::sat
