// The incremental-assumptions contract behind fraig and cec: one solver,
// one CNF, many assumption-only queries. The key guarantee under test is
// that a kUnsat caused by assumptions never poisons the solver — dropping
// the offending assumption makes the instance solvable again — plus the
// Tseitin/miter edge cases the sweeping engine leans on.

#include <gtest/gtest.h>

#include <algorithm>

#include "aig/aig.hpp"
#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace emorphic::sat {
namespace {

TEST(SatIncremental, UnsatUnderAssumptionThenSatAfterDroppingIt) {
  // (!a | !b | c) (!a | !b | !c): contradictory only under {a, b}. The
  // conflict is discovered by propagation at assumption decision levels —
  // the exact path that used to flag the whole database unsat.
  Solver s;
  SatVar a = s.new_vars(3);
  SatLit la = sat_lit(a), lb = sat_lit(a + 1), lc = sat_lit(a + 2);
  s.add_ternary(sat_neg(la), sat_neg(lb), lc);
  s.add_ternary(sat_neg(la), sat_neg(lb), sat_neg(lc));

  EXPECT_EQ(s.solve({la, lb}), SatResult::kUnsat);
  EXPECT_TRUE(s.ok()) << "assumption-only kUnsat must not poison the solver";

  // Dropping either assumption makes the instance satisfiable again.
  EXPECT_EQ(s.solve({la}), SatResult::kSat);
  EXPECT_EQ(s.solve({lb}), SatResult::kSat);
  EXPECT_EQ(s.solve(), SatResult::kSat);
  // And the original query still fails, reproducibly.
  EXPECT_EQ(s.solve({la, lb}), SatResult::kUnsat);
  EXPECT_TRUE(s.ok());
}

TEST(SatIncremental, FailedAssumptionsNameTheCulprits) {
  Solver s;
  SatVar a = s.new_vars(4);
  SatLit la = sat_lit(a), lb = sat_lit(a + 1), lc = sat_lit(a + 2);
  SatLit unrelated = sat_lit(a + 3);
  s.add_ternary(sat_neg(la), sat_neg(lb), lc);
  s.add_ternary(sat_neg(la), sat_neg(lb), sat_neg(lc));

  ASSERT_EQ(s.solve({unrelated, la, lb}), SatResult::kUnsat);
  const std::vector<SatLit>& failed = s.failed_assumptions();
  auto contains = [&](SatLit l) {
    return std::find(failed.begin(), failed.end(), l) != failed.end();
  };
  EXPECT_TRUE(contains(la));
  EXPECT_TRUE(contains(lb));
  EXPECT_FALSE(contains(unrelated));

  // After a SAT query the failed set is cleared.
  ASSERT_EQ(s.solve({unrelated}), SatResult::kSat);
  EXPECT_TRUE(s.failed_assumptions().empty());
}

TEST(SatIncremental, ContradictoryAssumptionsDoNotStick) {
  Solver s;
  SatVar a = s.new_vars();
  EXPECT_EQ(s.solve({sat_lit(a), sat_lit(a, true)}), SatResult::kUnsat);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.solve(), SatResult::kSat);
}

TEST(SatIncremental, PermanentUnsatIsReportedByOk) {
  Solver s;
  SatVar a = s.new_vars();
  s.add_unit(sat_lit(a));
  s.add_unit(sat_lit(a, true));
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.failed_assumptions().empty());
}

TEST(SatIncremental, SolverReuseAcrossEquivalenceQueries) {
  // The fraig pattern: encode one AIG, then prove/refute many candidate
  // pairs with assumption-only queries on the same solver.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit x = aig.make_or(a, b);
  Lit y = aig.make_and(x, a);      // (a|b) & a == a
  Lit z = aig.make_xor(a, b);      // != a
  aig.add_po(y);
  aig.add_po(z);

  Solver s;
  std::vector<SatVar> map = encode_aig(s, aig);
  auto equal = [&](Lit l1, Lit l2) {
    SatLit s1 = lit_to_sat(map, l1);
    SatLit s2 = lit_to_sat(map, l2);
    return s.solve({s1, sat_neg(s2)}) == SatResult::kUnsat &&
           s.solve({sat_neg(s1), s2}) == SatResult::kUnsat;
  };
  EXPECT_TRUE(equal(y, a));
  EXPECT_FALSE(equal(z, a));
  EXPECT_FALSE(equal(z, y));
  // Interleaved re-checks still agree (learnt clauses carried over).
  EXPECT_TRUE(equal(y, a));
  EXPECT_TRUE(s.ok());

  // Clauses may be added between queries: force z's XOR inputs apart.
  s.add_unit(lit_to_sat(map, a));
  s.add_unit(sat_neg(lit_to_sat(map, b)));
  EXPECT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(map[lit_var(z)]) !=
              static_cast<bool>(lit_is_compl(z)));
}

// --- Tseitin / miter edge cases ---------------------------------------------

TEST(SatIncremental, ConstantNodeEncoding) {
  // The constant node is a forced-0 variable; both constant PO polarities
  // must behave under assumptions.
  Aig aig;
  aig.add_pi();
  aig.add_po(kLitTrue);
  aig.add_po(kLitFalse);
  Solver s;
  std::vector<SatVar> map = encode_aig(s, aig);
  EXPECT_EQ(s.solve({lit_to_sat(map, kLitTrue)}), SatResult::kSat);
  EXPECT_EQ(s.solve({lit_to_sat(map, kLitFalse)}), SatResult::kUnsat);
  EXPECT_TRUE(s.ok());
}

TEST(SatIncremental, MiterOfConstantCircuitsAndInvertedOutputs) {
  // Zero-PI constant circuits: equal and complemented variants.
  Aig c1;
  c1.add_po(kLitTrue);
  Aig c2;
  c2.add_po(kLitTrue);
  Aig c3;
  c3.add_po(kLitFalse);
  {
    Solver s;
    s.add_unit(encode_miter(s, c1, c2));
    EXPECT_EQ(s.solve(), SatResult::kUnsat);
  }
  {
    Solver s;
    s.add_unit(encode_miter(s, c1, c3));
    EXPECT_EQ(s.solve(), SatResult::kSat);
  }
}

TEST(SatIncremental, MiterCatchesSingleInvertedOutput) {
  // Identical structure except one complemented PO among several — the
  // phase bug fraig's merge step must never introduce.
  auto build = [](bool invert_last) {
    Aig aig;
    Lit a = make_lit(aig.add_pi());
    Lit b = make_lit(aig.add_pi());
    aig.add_po(aig.make_and(a, b));
    Lit last = aig.make_or(a, b);
    aig.add_po(invert_last ? lit_not(last) : last);
    return aig;
  };
  Aig plain = build(false);
  Aig inverted = build(true);
  Solver s;
  s.add_unit(encode_miter(s, plain, inverted));
  ASSERT_EQ(s.solve(), SatResult::kSat);
  Solver s2;
  s2.add_unit(encode_miter(s2, plain, plain));
  EXPECT_EQ(s2.solve(), SatResult::kUnsat);
}

TEST(SatIncremental, SharedFaninLiteralsEncodeOnce) {
  // One node feeding many fanouts in both polarities: (a&b), !(a&b)&c —
  // the encoding maps the shared variable once and the complement rides on
  // the literal.
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  Lit c = make_lit(aig.add_pi());
  Lit ab = aig.make_and(a, b);
  Lit other = aig.make_and(lit_not(ab), c);
  aig.add_po(ab);
  aig.add_po(other);
  Solver s;
  std::vector<SatVar> map = encode_aig(s, aig);
  // The two POs are mutually exclusive: both true must be UNSAT.
  EXPECT_EQ(s.solve({lit_to_sat(map, ab), lit_to_sat(map, other)}),
            SatResult::kUnsat);
  EXPECT_EQ(s.solve({lit_to_sat(map, ab)}), SatResult::kSat);
  EXPECT_EQ(s.solve({lit_to_sat(map, other)}), SatResult::kSat);
}

}  // namespace
}  // namespace emorphic::sat
