#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "sat/cnf.hpp"
#include "util/rng.hpp"

namespace emorphic::sat {
namespace {

TEST(Sat, TrivialSat) {
  Solver s;
  SatVar v = s.new_vars();
  s.add_unit(sat_lit(v));
  EXPECT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  SatVar v = s.new_vars();
  s.add_unit(sat_lit(v));
  s.add_unit(sat_lit(v, true));
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, EmptyClauseUnsat) {
  Solver s;
  s.add_clause({});
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, TautologyDropped) {
  Solver s;
  SatVar v = s.new_vars();
  s.add_clause({sat_lit(v), sat_lit(v, true)});
  EXPECT_EQ(s.solve(), SatResult::kSat);
}

TEST(Sat, PropagationChain) {
  // (a) (!a | b) (!b | c) forces c.
  Solver s;
  SatVar a = s.new_vars(3);
  s.add_unit(sat_lit(a));
  s.add_binary(sat_lit(a, true), sat_lit(a + 1));
  s.add_binary(sat_lit(a + 1, true), sat_lit(a + 2));
  EXPECT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a + 2));
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. x[p][h] = pigeon p in hole h.
  Solver s;
  SatVar base = s.new_vars(6);
  auto x = [&](int p, int h) { return sat_lit(base + p * 2 + h); };
  for (int p = 0; p < 3; ++p) s.add_binary(x(p, 0), x(p, 1));
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        s.add_binary(sat_neg(x(p1, h)), sat_neg(x(p2, h)));
      }
    }
  }
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Sat, PigeonHole5Into4IsUnsat) {
  Solver s;
  const int pigeons = 5, holes = 4;
  SatVar base = s.new_vars(pigeons * holes);
  auto x = [&](int p, int h) { return sat_lit(base + p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<SatLit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(x(p, h));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(sat_neg(x(p1, h)), sat_neg(x(p2, h)));
      }
    }
  }
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, RandomSatisfiableInstances) {
  // Plant a solution, generate clauses consistent with it.
  Rng rng(161);
  for (int round = 0; round < 10; ++round) {
    Solver s;
    const unsigned n = 30;
    SatVar base = s.new_vars(n);
    std::vector<bool> planted(n);
    for (auto&& b : planted) b = rng.chance(0.5);
    for (int c = 0; c < 120; ++c) {
      std::vector<SatLit> clause;
      bool satisfied = false;
      for (int k = 0; k < 3; ++k) {
        unsigned v = static_cast<unsigned>(rng.next_below(n));
        bool neg = rng.chance(0.5);
        clause.push_back(sat_lit(base + v, neg));
        if (planted[v] != neg) satisfied = true;
      }
      if (!satisfied) {
        // Flip one literal to agree with the planted assignment.
        unsigned v = sat_var(clause[0]) - base;
        clause[0] = sat_lit(base + v, !planted[v]);
      }
      s.add_clause(clause);
    }
    ASSERT_EQ(s.solve(), SatResult::kSat);
    // Model must satisfy all clauses (solver self-check by re-solving with
    // model asserted).
  }
}

TEST(Sat, ConflictLimitYieldsUndecided) {
  Solver s;
  const int pigeons = 8, holes = 7;
  SatVar base = s.new_vars(pigeons * holes);
  auto x = [&](int p, int h) { return sat_lit(base + p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<SatLit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(x(p, h));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_binary(sat_neg(x(p1, h)), sat_neg(x(p2, h)));
      }
    }
  }
  EXPECT_EQ(s.solve({}, 5), SatResult::kUndecided);
}

TEST(Sat, AssumptionsRestrictSolutions) {
  Solver s;
  SatVar a = s.new_vars(2);
  s.add_binary(sat_lit(a), sat_lit(a + 1));  // a | b
  EXPECT_EQ(s.solve({sat_lit(a, true)}), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a + 1));
  EXPECT_EQ(s.solve({sat_lit(a, true), sat_lit(a + 1, true)}),
            SatResult::kUnsat);
  // Without assumptions the instance is still SAT (assumptions not sticky).
  EXPECT_EQ(s.solve(), SatResult::kSat);
}

TEST(Cnf, MiterOfIdenticalCircuitsIsUnsat) {
  Aig aig;
  Lit a = make_lit(aig.add_pi());
  Lit b = make_lit(aig.add_pi());
  aig.add_po(aig.make_xor(a, b));
  Solver s;
  SatLit miter = encode_miter(s, aig, aig);
  s.add_unit(miter);
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(Cnf, MiterOfDifferentCircuitsIsSat) {
  Aig x;
  Lit a = make_lit(x.add_pi());
  Lit b = make_lit(x.add_pi());
  x.add_po(x.make_and(a, b));
  Aig y;
  Lit c = make_lit(y.add_pi());
  Lit d = make_lit(y.add_pi());
  y.add_po(y.make_or(c, d));
  Solver s;
  SatLit miter = encode_miter(s, x, y);
  s.add_unit(miter);
  ASSERT_EQ(s.solve(), SatResult::kSat);
  // Counterexample: exactly one input true distinguishes AND from OR.
  bool va = s.model_value(0), vb = s.model_value(1);
  EXPECT_NE(va && vb, va || vb);
}

}  // namespace
}  // namespace emorphic::sat
