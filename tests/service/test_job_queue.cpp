// BoundedQueue semantics: non-blocking admission with a hard bound, FIFO
// delivery, and drain-on-close.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/job_queue.hpp"

namespace emorphic::service {
namespace {

TEST(BoundedQueue, DeliversFifo) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  int out = 0;
  EXPECT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(BoundedQueue, RejectsWhenFullWithoutBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full: immediate, typed rejection
  int out = 0;
  EXPECT_TRUE(queue.pop(&out));
  EXPECT_TRUE(queue.try_push(3));  // a slot freed up
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> queue(1);
  int out = 0;
  std::thread consumer([&] { EXPECT_TRUE(queue.pop(&out)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(queue.try_push(7));
  consumer.join();
  EXPECT_EQ(out, 7);
}

TEST(BoundedQueue, CloseDrainsThenStops) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3));  // admission stopped immediately
  int out = 0;
  EXPECT_TRUE(queue.pop(&out));  // ...but the backlog still drains
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(&out));  // drained + closed
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumers) {
  BoundedQueue<int> queue(1);
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      int out = 0;
      while (queue.pop(&out)) {
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  for (std::thread& t : consumers) t.join();  // must not hang
}

TEST(BoundedQueue, ManyProducersManyConsumersLoseNothing) {
  BoundedQueue<int> queue(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!queue.try_push(i)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      int out = 0;
      while (queue.pop(&out)) consumed.fetch_add(1);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
}

}  // namespace
}  // namespace emorphic::service
