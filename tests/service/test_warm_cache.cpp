// WarmCache: the shared substrate the batch driver and the synthesis
// service warm across runs. The load-bearing test is the determinism gate:
// N threads through one WarmCache produce bit-identical results to serial,
// cold runs — sharing the matcher and QoR memo must never change answers.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "flow/batch.hpp"
#include "flow/warm_cache.hpp"

// Count every heap allocation in this binary so the arena-reuse gate below
// can assert the service's warm path stops churning the allocator. The
// replacements are malloc/free based (a replaced new must pair with a
// replaced delete); only the plain-alignment forms are counted — over-aligned
// allocations are rare and under-counting them only makes the gate stricter.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace emorphic {
namespace {

FlowParams quick_params() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.rewrite.time_limit_s = 1e9;  // determinism needs limit-free runs
  params.sa.num_threads = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.verify = false;
  return params;
}

std::vector<Aig> test_circuits() {
  std::vector<Aig> circuits;
  circuits.push_back(make_adder(6));
  circuits.push_back(make_arbiter(4));
  circuits.push_back(make_square(4));
  circuits.push_back(make_adder(8));
  return circuits;
}

TEST(WarmCache, SharesOneMatcherPerLibrary) {
  WarmCache cache;
  const CellLibrary& lib = CellLibrary::asap7_like();
  auto a = cache.matcher_for(lib);
  auto b = cache.matcher_for(lib);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().matchers, 1u);
}

TEST(WarmCache, ConcurrentMatcherRequestsConverge) {
  WarmCache cache;
  const CellLibrary& lib = CellLibrary::asap7_like();
  std::vector<std::shared_ptr<const Matcher>> seen(8);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&, i] { seen[i] = cache.matcher_for(lib); });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
  EXPECT_EQ(cache.stats().matchers, 1u);
}

TEST(WarmCache, FlowResultCacheHitsAndCounts) {
  WarmCache cache;
  Aig adder = make_adder(4);
  std::uint64_t key = WarmCache::flow_key(adder, 1, 42);

  CachedFlow out;
  EXPECT_FALSE(cache.lookup_flow(key, &out));

  CachedFlow stored;
  stored.qor.area = 12.5;
  stored.qor.delay = 80.0;
  stored.final_aig = adder;
  stored.verify_status = CecStatus::kEquivalent;
  cache.insert_flow(key, stored);

  ASSERT_TRUE(cache.lookup_flow(key, &out));
  EXPECT_DOUBLE_EQ(out.qor.area, 12.5);
  EXPECT_EQ(out.verify_status, CecStatus::kEquivalent);

  WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 1u);
  EXPECT_EQ(stats.result_entries, 1u);
}

TEST(WarmCache, FlowKeySeparatesInputsSeedsAndParams) {
  Aig adder = make_adder(4);
  Aig arbiter = make_arbiter(4);
  std::uint64_t base = WarmCache::flow_key(adder, 1, 42);
  EXPECT_NE(base, WarmCache::flow_key(arbiter, 1, 42));
  EXPECT_NE(base, WarmCache::flow_key(adder, 2, 42));
  EXPECT_NE(base, WarmCache::flow_key(adder, 1, 43));
  EXPECT_EQ(base, WarmCache::flow_key(make_adder(4), 1, 42));
}

/// The determinism gate (ISSUE satellite): N worker threads sharing one
/// WarmCache — concurrent QoR memo and matcher use — must produce
/// bit-identical FlowQor to a serial, cache-free run of the same batch.
TEST(WarmCache, ConcurrentSharingIsBitIdenticalToSerial) {
  std::vector<Aig> circuits = test_circuits();
  Pipeline pipeline = Pipeline::emorphic();
  FlowParams params = quick_params();

  BatchParams serial;
  serial.num_threads = 1;
  BatchResult reference = run_batch(circuits, pipeline, params, serial);

  WarmCache cache;
  BatchParams shared;
  shared.num_threads = 4;
  shared.warm_cache = &cache;
  BatchResult warm = run_batch(circuits, pipeline, params, shared);

  ASSERT_EQ(reference.results.size(), warm.results.size());
  for (std::size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].qor.area, warm.results[i].qor.area)
        << "circuit " << i;
    EXPECT_EQ(reference.results[i].qor.delay, warm.results[i].qor.delay)
        << "circuit " << i;
    EXPECT_EQ(reference.results[i].qor.lev, warm.results[i].qor.lev)
        << "circuit " << i;
  }
  // The shared memo saw traffic (the gate is vacuous otherwise).
  WarmCacheStats stats = cache.stats();
  EXPECT_GT(stats.qor_hits + stats.qor_misses, 0u);
}

/// Re-running a batch against an already-warm cache — the service's
/// steady state — still changes nothing.
TEST(WarmCache, WarmReRunsStayIdentical) {
  std::vector<Aig> circuits = test_circuits();
  Pipeline pipeline = Pipeline::emorphic();
  FlowParams params = quick_params();

  WarmCache cache;
  BatchParams batch;
  batch.num_threads = 2;
  batch.warm_cache = &cache;

  BatchResult first = run_batch(circuits, pipeline, params, batch);
  WarmCacheStats after_first = cache.stats();
  BatchResult second = run_batch(circuits, pipeline, params, batch);
  WarmCacheStats after_second = cache.stats();

  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].qor.area, second.results[i].qor.area);
    EXPECT_EQ(first.results[i].qor.delay, second.results[i].qor.delay);
    EXPECT_EQ(first.results[i].qor.lev, second.results[i].qor.lev);
  }
  // The second pass re-visits structures the first one mapped.
  EXPECT_GT(after_second.qor_hits, after_first.qor_hits);
}

/// The service worker's steady state (ISSUE satellite): one long-lived
/// FlowContext per worker, rebound to job after job — exactly what
/// SynthServer::worker_loop does. Repeated identical jobs must (a) stay
/// bit-identical, and (b) stop allocating once warm: the context's mapper
/// workspaces (cut arenas, DP state), the shared matcher, and the QoR memo
/// all persist, so a warm job re-walks warm storage.
TEST(WarmCache, WorkerContextReuseIsFlatAndDeterministic) {
  Aig input = make_adder(6);
  Pipeline pipeline = Pipeline::emorphic();
  FlowParams params = quick_params();
  params.sa.num_threads = 1;  // single-threaded: allocation counts are
                              // deterministic, so "flat" can be exact

  WarmCache cache;
  FlowContext ctx;  // the per-worker context, reused across jobs
  std::atomic<bool> cancel{false};

  std::vector<FlowQor> qors;
  std::vector<std::uint64_t> allocs;
  for (int job = 0; job < 5; ++job) {
    ctx.params = params;
    cache.prepare(ctx);
    ctx.input = input;
    ctx.seed = 1;
    ctx.cancel = &cancel;
    std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    FlowResult result = pipeline.run(ctx);
    allocs.push_back(g_heap_allocs.load(std::memory_order_relaxed) - before);
    qors.push_back(result.qor);
  }

  for (std::size_t i = 1; i < qors.size(); ++i) {
    EXPECT_EQ(qors[0].area, qors[i].area) << "job " << i;
    EXPECT_EQ(qors[0].delay, qors[i].delay) << "job " << i;
    EXPECT_EQ(qors[0].lev, qors[i].lev) << "job " << i;
  }

  // Warm jobs allocate strictly less than the cold one (the workspaces and
  // memo absorbed the bulk), and the count is flat once the memo saturates:
  // jobs 3 and 4 re-run identical warm state, so their counts are equal.
  EXPECT_LT(allocs[1], allocs[0]);
  EXPECT_EQ(allocs[3], allocs[4]) << "steady-state allocation count drifts";
  EXPECT_LE(allocs[4], allocs[1]);
}

TEST(WarmCache, ClearResetsEverything) {
  WarmCache cache;
  cache.matcher_for(CellLibrary::asap7_like());
  CachedFlow flow;
  cache.insert_flow(1, flow);
  cache.clear();
  WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.matchers, 0u);
  EXPECT_EQ(stats.result_entries, 0u);
  EXPECT_EQ(stats.qor_entries, 0u);
}

}  // namespace
}  // namespace emorphic
