// WarmCache: the shared substrate the batch driver and the synthesis
// service warm across runs. The load-bearing test is the determinism gate:
// N threads through one WarmCache produce bit-identical results to serial,
// cold runs — sharing the matcher and QoR memo must never change answers.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "flow/batch.hpp"
#include "flow/warm_cache.hpp"

namespace emorphic {
namespace {

FlowParams quick_params() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.rewrite.time_limit_s = 1e9;  // determinism needs limit-free runs
  params.sa.num_threads = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.verify = false;
  return params;
}

std::vector<Aig> test_circuits() {
  std::vector<Aig> circuits;
  circuits.push_back(make_adder(6));
  circuits.push_back(make_arbiter(4));
  circuits.push_back(make_square(4));
  circuits.push_back(make_adder(8));
  return circuits;
}

TEST(WarmCache, SharesOneMatcherPerLibrary) {
  WarmCache cache;
  const CellLibrary& lib = CellLibrary::asap7_like();
  auto a = cache.matcher_for(lib);
  auto b = cache.matcher_for(lib);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().matchers, 1u);
}

TEST(WarmCache, ConcurrentMatcherRequestsConverge) {
  WarmCache cache;
  const CellLibrary& lib = CellLibrary::asap7_like();
  std::vector<std::shared_ptr<const Matcher>> seen(8);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&, i] { seen[i] = cache.matcher_for(lib); });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
  EXPECT_EQ(cache.stats().matchers, 1u);
}

TEST(WarmCache, FlowResultCacheHitsAndCounts) {
  WarmCache cache;
  Aig adder = make_adder(4);
  std::uint64_t key = WarmCache::flow_key(adder, 1, 42);

  CachedFlow out;
  EXPECT_FALSE(cache.lookup_flow(key, &out));

  CachedFlow stored;
  stored.qor.area = 12.5;
  stored.qor.delay = 80.0;
  stored.final_aig = adder;
  stored.verify_status = CecStatus::kEquivalent;
  cache.insert_flow(key, stored);

  ASSERT_TRUE(cache.lookup_flow(key, &out));
  EXPECT_DOUBLE_EQ(out.qor.area, 12.5);
  EXPECT_EQ(out.verify_status, CecStatus::kEquivalent);

  WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.result_hits, 1u);
  EXPECT_EQ(stats.result_misses, 1u);
  EXPECT_EQ(stats.result_entries, 1u);
}

TEST(WarmCache, FlowKeySeparatesInputsSeedsAndParams) {
  Aig adder = make_adder(4);
  Aig arbiter = make_arbiter(4);
  std::uint64_t base = WarmCache::flow_key(adder, 1, 42);
  EXPECT_NE(base, WarmCache::flow_key(arbiter, 1, 42));
  EXPECT_NE(base, WarmCache::flow_key(adder, 2, 42));
  EXPECT_NE(base, WarmCache::flow_key(adder, 1, 43));
  EXPECT_EQ(base, WarmCache::flow_key(make_adder(4), 1, 42));
}

/// The determinism gate (ISSUE satellite): N worker threads sharing one
/// WarmCache — concurrent QoR memo and matcher use — must produce
/// bit-identical FlowQor to a serial, cache-free run of the same batch.
TEST(WarmCache, ConcurrentSharingIsBitIdenticalToSerial) {
  std::vector<Aig> circuits = test_circuits();
  Pipeline pipeline = Pipeline::emorphic();
  FlowParams params = quick_params();

  BatchParams serial;
  serial.num_threads = 1;
  BatchResult reference = run_batch(circuits, pipeline, params, serial);

  WarmCache cache;
  BatchParams shared;
  shared.num_threads = 4;
  shared.warm_cache = &cache;
  BatchResult warm = run_batch(circuits, pipeline, params, shared);

  ASSERT_EQ(reference.results.size(), warm.results.size());
  for (std::size_t i = 0; i < reference.results.size(); ++i) {
    EXPECT_EQ(reference.results[i].qor.area, warm.results[i].qor.area)
        << "circuit " << i;
    EXPECT_EQ(reference.results[i].qor.delay, warm.results[i].qor.delay)
        << "circuit " << i;
    EXPECT_EQ(reference.results[i].qor.lev, warm.results[i].qor.lev)
        << "circuit " << i;
  }
  // The shared memo saw traffic (the gate is vacuous otherwise).
  WarmCacheStats stats = cache.stats();
  EXPECT_GT(stats.qor_hits + stats.qor_misses, 0u);
}

/// Re-running a batch against an already-warm cache — the service's
/// steady state — still changes nothing.
TEST(WarmCache, WarmReRunsStayIdentical) {
  std::vector<Aig> circuits = test_circuits();
  Pipeline pipeline = Pipeline::emorphic();
  FlowParams params = quick_params();

  WarmCache cache;
  BatchParams batch;
  batch.num_threads = 2;
  batch.warm_cache = &cache;

  BatchResult first = run_batch(circuits, pipeline, params, batch);
  WarmCacheStats after_first = cache.stats();
  BatchResult second = run_batch(circuits, pipeline, params, batch);
  WarmCacheStats after_second = cache.stats();

  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].qor.area, second.results[i].qor.area);
    EXPECT_EQ(first.results[i].qor.delay, second.results[i].qor.delay);
    EXPECT_EQ(first.results[i].qor.lev, second.results[i].qor.lev);
  }
  // The second pass re-visits structures the first one mapped.
  EXPECT_GT(after_second.qor_hits, after_first.qor_hits);
}

TEST(WarmCache, ClearResetsEverything) {
  WarmCache cache;
  cache.matcher_for(CellLibrary::asap7_like());
  CachedFlow flow;
  cache.insert_flow(1, flow);
  cache.clear();
  WarmCacheStats stats = cache.stats();
  EXPECT_EQ(stats.matchers, 0u);
  EXPECT_EQ(stats.result_entries, 0u);
  EXPECT_EQ(stats.qor_entries, 0u);
}

}  // namespace
}  // namespace emorphic
