// SynthServer end-to-end: jobs over real sockets, plus the abuse suite the
// ISSUE demands — malformed input, mid-flight cancellation, deadline
// expiry, queue-full rejection — all answered with typed errors while the
// server keeps serving, and a drain-on-shutdown check.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "aig/aig_io.hpp"
#include "benchgen/arith.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace emorphic::service {
namespace {

FlowParams quick_params() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.rewrite.time_limit_s = 1e9;
  params.sa.num_threads = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.verify = false;
  return params;
}

/// A stage that spins politely until a stop signal fires (or a generous
/// cap, so a broken signal path cannot hang the suite). Two of these in a
/// row make cancellation/deadline behavior deterministic to test: stopping
/// during the first skips the second -> FlowResult::cancelled.
class SlowStage : public Stage {
 public:
  const char* name() const override { return "SlowTest"; }
  void run(FlowContext& ctx) const override {
    for (int i = 0; i < 5000; ++i) {
      if (ctx.should_stop()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
};

Pipeline slow_pipeline(const FlowParams&) {
  Pipeline pipeline;
  pipeline.add(std::make_unique<SlowStage>());
  pipeline.add(std::make_unique<SlowStage>());
  return pipeline;
}

/// Server + client over an ephemeral loopback TCP port (no socket files to
/// clean up, works in any sandbox that allows loopback).
struct ServerFixture {
  explicit ServerFixture(unsigned workers = 2, std::size_t queue = 16) {
    config.workers = workers;
    config.queue_capacity = queue;
    config.base_params = quick_params();
    server = std::make_unique<SynthServer>(config);
    server->add_flow("slowtest", slow_pipeline);
    server->start();
  }
  SynthClient connect() {
    return SynthClient::connect_tcp("127.0.0.1", server->tcp_port());
  }
  ServerConfig config;
  std::unique_ptr<SynthServer> server;
};

JobRequest adder_request(const std::string& id, std::uint64_t seed = 1) {
  JobRequest req;
  req.id = id;
  req.circuit = write_aiger(make_adder(6));
  req.seed = seed;
  return req;
}

JobRequest slow_request(const std::string& id) {
  JobRequest req = adder_request(id);
  req.flow = "slowtest";
  return req;
}

TEST(SynthServer, CompletesAJobAndServesRepeatsFromCache) {
  ServerFixture fx;
  SynthClient client = fx.connect();

  JobRequest req = adder_request("job-1");
  req.return_circuit = true;
  Json verdict = client.submit(req);
  ASSERT_EQ(verdict.at("type").as_string(), "accepted");
  Json result = client.await("job-1");
  ASSERT_EQ(result.at("type").as_string(), "result");
  EXPECT_EQ(result.at("stop_reason").as_string(), "none");
  EXPECT_GT(result.at("qor").at("area").as_number(), 0.0);
  EXPECT_FALSE(result.at("cache_hit").as_bool());
  // The optimized circuit comes back as parseable AIGER.
  EXPECT_NO_THROW(read_aiger(result.at("circuit").as_string()));

  // Same circuit, seed, params -> flow-result cache answers.
  JobRequest repeat = adder_request("job-2");
  ASSERT_EQ(client.submit(repeat).at("type").as_string(), "accepted");
  Json cached = client.await("job-2");
  ASSERT_EQ(cached.at("type").as_string(), "result");
  EXPECT_TRUE(cached.at("cache_hit").as_bool());
  EXPECT_EQ(cached.at("qor").at("area").as_number(),
            result.at("qor").at("area").as_number());

  // A different seed is a different flow — no stale cache hit.
  JobRequest reseeded = adder_request("job-3", /*seed=*/9);
  ASSERT_EQ(client.submit(reseeded).at("type").as_string(), "accepted");
  Json fresh = client.await("job-3");
  ASSERT_EQ(fresh.at("type").as_string(), "result");
  EXPECT_FALSE(fresh.at("cache_hit").as_bool());

  EXPECT_EQ(fx.server->stats().result_cache_hits, 1u);
}

TEST(SynthServer, LutmapParamsSelectTheLutBackendWithItsOwnCacheKey) {
  // The lutmap knobs travel the whole protocol path: per-request overrides
  // rebuild the flow around the LUT backend, and the overrides object is
  // part of the cache fingerprint, so a LUT-mapped job can never alias a
  // cell-mapped job in the warm cache.
  ServerFixture fx;
  SynthClient client = fx.connect();

  // Cell-mapped baseline primes the cache.
  ASSERT_EQ(client.submit(adder_request("cell-1")).at("type").as_string(),
            "accepted");
  Json cell = client.await("cell-1");
  ASSERT_EQ(cell.at("type").as_string(), "result");
  EXPECT_FALSE(cell.at("cache_hit").as_bool());

  // Same circuit + seed through the LUT backend: distinct key, no alias.
  JobRequest lut = adder_request("lut-1");
  lut.params["use_lutmap"] = true;
  lut.params["lut_size"] = 4;
  ASSERT_EQ(client.submit(lut).at("type").as_string(), "accepted");
  Json lut_result = client.await("lut-1");
  ASSERT_EQ(lut_result.at("type").as_string(), "result");
  EXPECT_FALSE(lut_result.at("cache_hit").as_bool());
  // Unit-cost QoR: area is the LUT count, delay the LUT depth.
  EXPECT_GT(lut_result.at("qor").at("area").as_number(), 0.0);
  EXPECT_GT(lut_result.at("qor").at("delay").as_number(), 0.0);

  // An identical lutmap submission is a cache hit.
  JobRequest repeat = adder_request("lut-2");
  repeat.params["use_lutmap"] = true;
  repeat.params["lut_size"] = 4;
  ASSERT_EQ(client.submit(repeat).at("type").as_string(), "accepted");
  Json cached = client.await("lut-2");
  ASSERT_EQ(cached.at("type").as_string(), "result");
  EXPECT_TRUE(cached.at("cache_hit").as_bool());
  EXPECT_EQ(cached.at("qor").at("area").as_number(),
            lut_result.at("qor").at("area").as_number());

  // A different K is again its own cache entry.
  JobRequest other_k = adder_request("lut-3");
  other_k.params["use_lutmap"] = true;
  other_k.params["lut_size"] = 6;
  ASSERT_EQ(client.submit(other_k).at("type").as_string(), "accepted");
  EXPECT_FALSE(client.await("lut-3").at("cache_hit").as_bool());

  EXPECT_EQ(fx.server->stats().result_cache_hits, 1u);
}

TEST(SynthServer, LutmapParamAbuseGetsTypedBadParams) {
  ServerFixture fx;
  SynthClient client = fx.connect();

  // lut_size outside the backend's [2, kMaxCutSize] contract — rejected at
  // submit time, before any flow runs.
  for (int bad : {1, 9}) {
    JobRequest req = adder_request("bad-k-" + std::to_string(bad));
    req.params["use_lutmap"] = true;
    req.params["lut_size"] = bad;
    EXPECT_EQ(client.submit(req).at("code").as_string(), "BAD_PARAMS")
        << "lut_size=" << bad;
  }

  // Ill-typed values die the same way.
  JobRequest bad_bool = adder_request("bad-bool");
  bad_bool.params["use_lutmap"] = "yes";
  EXPECT_EQ(client.submit(bad_bool).at("code").as_string(), "BAD_PARAMS");
  JobRequest bad_num = adder_request("bad-num");
  bad_num.params["lut_size"] = "six";
  EXPECT_EQ(client.submit(bad_num).at("code").as_string(), "BAD_PARAMS");

  // The server still serves real lutmap work afterwards.
  JobRequest ok = adder_request("ok");
  ok.params["use_lutmap"] = true;
  ASSERT_EQ(client.submit(ok).at("type").as_string(), "accepted");
  EXPECT_EQ(client.await("ok").at("type").as_string(), "result");
}

TEST(SynthServer, StreamsProgressEvents) {
  ServerFixture fx;
  SynthClient client = fx.connect();
  JobRequest req = adder_request("job-1");
  req.progress = true;
  ASSERT_EQ(client.submit(req).at("type").as_string(), "accepted");
  int progress_frames = 0;
  Json result = client.await("job-1", [&](const Json& event) {
    if (event.at("type").as_string() == "progress") ++progress_frames;
  });
  EXPECT_EQ(result.at("type").as_string(), "result");
  // The emorphic pipeline has several stages; each emits begin + end.
  EXPECT_GE(progress_frames, 4);
}

TEST(SynthServer, RejectsMalformedTrafficAndKeepsServing) {
  ServerFixture fx;
  SynthClient client = fx.connect();

  // Not JSON at all.
  client.send(Json("this is not an object"));
  Json error;
  ASSERT_TRUE(client.recv(&error));
  EXPECT_EQ(error.at("type").as_string(), "error");
  EXPECT_EQ(error.at("code").as_string(), "MALFORMED_REQUEST");

  // Unknown message type.
  Json bogus = Json::object();
  bogus["type"] = "frobnicate";
  client.send(bogus);
  ASSERT_TRUE(client.recv(&error));
  EXPECT_EQ(error.at("code").as_string(), "MALFORMED_REQUEST");

  // Truncated AIGER — parse errors become typed rejections, not crashes.
  JobRequest bad_circuit = adder_request("job-bad");
  bad_circuit.circuit = "aag 7 2 0";
  EXPECT_EQ(client.submit(bad_circuit).at("code").as_string(),
            "MALFORMED_CIRCUIT");

  // Unknown params key.
  JobRequest bad_params = adder_request("job-params");
  bad_params.params["warp_factor"] = 9;
  EXPECT_EQ(client.submit(bad_params).at("code").as_string(), "BAD_PARAMS");

  // Unknown flow.
  JobRequest bad_flow = adder_request("job-flow");
  bad_flow.flow = "no-such-flow";
  EXPECT_EQ(client.submit(bad_flow).at("code").as_string(), "UNKNOWN_FLOW");

  // After all that abuse the server still completes real work.
  ASSERT_EQ(client.submit(adder_request("job-ok")).at("type").as_string(),
            "accepted");
  EXPECT_EQ(client.await("job-ok").at("type").as_string(), "result");
  EXPECT_GE(fx.server->stats().rejected_malformed, 5u);
}

TEST(SynthServer, GarbageBytesGetTypedErrorThenDisconnect) {
  ServerFixture fx;
  // Raw socket speaking the wrong protocol entirely.
  Socket raw = Socket::connect_tcp("127.0.0.1", fx.server->tcp_port());
  raw.write_all("GET / HTTP/1.1\r\n\r\n", 18);
  std::string payload;
  // The server answers with one typed error frame, then hangs up.
  EXPECT_TRUE(read_frame(raw, &payload));
  Json error = Json::parse(payload);
  EXPECT_EQ(error.at("code").as_string(), "MALFORMED_REQUEST");
  EXPECT_FALSE(read_frame(raw, &payload));

  // And an untouched client still gets service.
  SynthClient client = fx.connect();
  ASSERT_EQ(client.submit(adder_request("job-1")).at("type").as_string(),
            "accepted");
  EXPECT_EQ(client.await("job-1").at("type").as_string(), "result");
}

TEST(SynthServer, CancelsMidFlight) {
  ServerFixture fx;
  SynthClient client = fx.connect();
  ASSERT_EQ(client.submit(slow_request("job-slow")).at("type").as_string(),
            "accepted");
  // Give the worker a moment to actually start the flow, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.cancel("job-slow");
  Json terminal = client.await("job-slow");
  ASSERT_EQ(terminal.at("type").as_string(), "cancelled");
  EXPECT_EQ(terminal.at("reason").as_string(), "cancelled");
  EXPECT_EQ(fx.server->stats().jobs_cancelled, 1u);
}

TEST(SynthServer, DeadlineExpiryIsReportedAsDeadline) {
  ServerFixture fx;
  SynthClient client = fx.connect();
  JobRequest req = slow_request("job-deadline");
  req.deadline_s = 0.2;
  ASSERT_EQ(client.submit(req).at("type").as_string(), "accepted");
  Json terminal = client.await("job-deadline");
  ASSERT_EQ(terminal.at("type").as_string(), "cancelled");
  EXPECT_EQ(terminal.at("reason").as_string(), "deadline");
}

TEST(SynthServer, CancelOfUnknownJobIsAcknowledgedNotFatal) {
  ServerFixture fx;
  SynthClient client = fx.connect();
  client.cancel("never-submitted");
  Json ack;
  ASSERT_TRUE(client.recv(&ack));
  EXPECT_EQ(ack.at("type").as_string(), "cancel_ack");
  EXPECT_FALSE(ack.at("found").as_bool());
}

TEST(SynthServer, OverloadRejectsWithTypedErrorAndRecovers) {
  // One worker, queue of one: the third concurrent slow job cannot fit.
  ServerFixture fx(/*workers=*/1, /*queue=*/1);
  SynthClient client = fx.connect();

  ASSERT_EQ(client.submit(slow_request("slow-1")).at("type").as_string(),
            "accepted");
  // Wait until the worker has dequeued slow-1, freeing the queue slot for
  // slow-2 deterministically.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(client.submit(slow_request("slow-2")).at("type").as_string(),
            "accepted");

  Json verdict = client.submit(slow_request("slow-3"));
  ASSERT_EQ(verdict.at("type").as_string(), "error");
  EXPECT_EQ(verdict.at("code").as_string(), "OVERLOADED");
  EXPECT_GE(fx.server->stats().rejected_overloaded, 1u);

  // Clear the decks: cancel the in-flight jobs...
  client.cancel("slow-1");
  client.cancel("slow-2");
  EXPECT_EQ(client.await("slow-1").at("type").as_string(), "cancelled");
  EXPECT_EQ(client.await("slow-2").at("type").as_string(), "cancelled");

  // ...and the server accepts and completes new work.
  ASSERT_EQ(client.submit(adder_request("job-after")).at("type").as_string(),
            "accepted");
  EXPECT_EQ(client.await("job-after").at("type").as_string(), "result");
}

TEST(SynthServer, DuplicateInFlightIdIsRejected) {
  ServerFixture fx;
  SynthClient client = fx.connect();
  ASSERT_EQ(client.submit(slow_request("dup")).at("type").as_string(),
            "accepted");
  Json verdict = client.submit(slow_request("dup"));
  ASSERT_EQ(verdict.at("type").as_string(), "error");
  EXPECT_EQ(verdict.at("code").as_string(), "MALFORMED_REQUEST");
  client.cancel("dup");
  EXPECT_EQ(client.await("dup").at("type").as_string(), "cancelled");
}

TEST(SynthServer, DisconnectedClientAutoCancelsItsJobs) {
  ServerFixture fx(/*workers=*/1);
  {
    SynthClient client = fx.connect();
    ASSERT_EQ(client.submit(slow_request("orphan")).at("type").as_string(),
              "accepted");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Client vanishes without cancelling.
  }
  // The server notices the dead session and frees the worker; a new client
  // gets served promptly instead of waiting out the slow job's cap.
  SynthClient client = fx.connect();
  ASSERT_EQ(client.submit(adder_request("job-next")).at("type").as_string(),
            "accepted");
  EXPECT_EQ(client.await("job-next").at("type").as_string(), "result");
}

TEST(SynthServer, StopDrainsAcceptedJobs) {
  ServerFixture fx(/*workers=*/1);
  SynthClient client = fx.connect();
  // Three quick jobs stack up behind a single worker.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_EQ(client
                  .submit(adder_request("drain-" + std::to_string(i),
                                        /*seed=*/static_cast<unsigned>(i)))
                  .at("type")
                  .as_string(),
              "accepted");
  }
  // Stop concurrently: every accepted job must still get its response.
  std::thread stopper([&] { fx.server->stop(); });
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(client.await("drain-" + std::to_string(i))
                  .at("type")
                  .as_string(),
              "result");
  }
  stopper.join();
  EXPECT_EQ(fx.server->stats().jobs_completed, 3u);
}

TEST(SynthServer, ShutdownMessageArmsTheWaiter) {
  ServerFixture fx;
  EXPECT_FALSE(fx.server->wait_for_shutdown_request(0.0));
  SynthClient client = fx.connect();
  client.shutdown_server();  // returns once the server acknowledged
  EXPECT_TRUE(fx.server->wait_for_shutdown_request(5.0));
  fx.server->stop();
  EXPECT_FALSE(fx.server->running());
}

TEST(SynthServer, ServesManyConcurrentClients) {
  ServerFixture fx(/*workers=*/4, /*queue=*/64);
  constexpr int kClients = 6;
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      SynthClient client = SynthClient::connect_tcp(
          "127.0.0.1", fx.server->tcp_port());
      std::string id = "client-" + std::to_string(c);
      ASSERT_EQ(client.submit(adder_request(id)).at("type").as_string(),
                "accepted");
      if (client.await(id).at("type").as_string() == "result") {
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(completed.load(), kClients);
  // All clients asked for the same (circuit, seed, params). Up to `workers`
  // of them can race past the cache before the first one inserts (each
  // computing the same deterministic answer), but with more jobs than
  // workers the overflow jobs are guaranteed to be answered warm.
  EXPECT_GE(fx.server->stats().result_cache_hits, 1u);
}

}  // namespace
}  // namespace emorphic::service
