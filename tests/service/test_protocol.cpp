// Wire protocol units: framing round-trips and corruption handling
// (util/socket.hpp), JobRequest parsing, FlowParams overrides, and the
// params fingerprint.

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <thread>

#include "service/protocol.hpp"
#include "util/socket.hpp"

namespace emorphic::service {
namespace {

// --- framing ----------------------------------------------------------------

TEST(Framing, RoundTripsPayloads) {
  auto [a, b] = Socket::pair();
  for (const std::string payload :
       {std::string(""), std::string("{}"), std::string(4096, 'x')}) {
    write_frame(a, payload);
    std::string got;
    ASSERT_TRUE(read_frame(b, &got));
    EXPECT_EQ(got, payload);
  }
}

TEST(Framing, SequentialFramesStayAligned) {
  auto [a, b] = Socket::pair();
  write_frame(a, "first");
  write_frame(a, "second");
  write_frame(a, "third");
  std::string got;
  ASSERT_TRUE(read_frame(b, &got));
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(read_frame(b, &got));
  EXPECT_EQ(got, "second");
  ASSERT_TRUE(read_frame(b, &got));
  EXPECT_EQ(got, "third");
}

TEST(Framing, CleanEofReturnsFalse) {
  auto [a, b] = Socket::pair();
  a.close();
  std::string got;
  EXPECT_FALSE(read_frame(b, &got));
}

TEST(Framing, BadMagicThrows) {
  auto [a, b] = Socket::pair();
  const char junk[8] = {'N', 'O', 'P', 'E', 0, 0, 0, 0};
  a.write_all(junk, sizeof(junk));
  std::string got;
  EXPECT_THROW(read_frame(b, &got), std::runtime_error);
}

TEST(Framing, OversizedLengthThrows) {
  auto [a, b] = Socket::pair();
  // Length 1 GiB, little-endian on the wire: bytes 00 00 00 40.
  const char header[8] = {'E', 'M', 'S', '1', 0, 0, 0, 0x40};
  a.write_all(header, sizeof(header));
  std::string got;
  EXPECT_THROW(read_frame(b, &got, /*max_bytes=*/1 << 20),
               std::runtime_error);
}

TEST(Framing, TruncatedPayloadThrows) {
  auto [a, b] = Socket::pair();
  // Declare 100 bytes, deliver 3, hang up.
  char header[8] = {'E', 'M', 'S', '1', 100, 0, 0, 0};
  a.write_all(header, sizeof(header));
  a.write_all("abc", 3);
  a.close();
  std::string got;
  EXPECT_THROW(read_frame(b, &got), std::runtime_error);
}

// --- JobRequest -------------------------------------------------------------

TEST(JobRequest, RoundTripsThroughJson) {
  JobRequest req;
  req.id = "job-42";
  req.format = "eqn";
  req.circuit = "INORDER = a b; OUTORDER = y; y = a & b;";
  req.flow = "baseline";
  req.seed = 99;
  req.deadline_s = 2.5;
  req.return_circuit = true;
  req.progress = true;
  req.params = Json::object();
  req.params["rounds"] = 3;

  JobRequest back = JobRequest::from_json(req.to_json());
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.format, req.format);
  EXPECT_EQ(back.circuit, req.circuit);
  EXPECT_EQ(back.flow, req.flow);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_DOUBLE_EQ(back.deadline_s, req.deadline_s);
  EXPECT_TRUE(back.return_circuit);
  EXPECT_TRUE(back.progress);
  EXPECT_EQ(back.params.dump(), req.params.dump());
}

TEST(JobRequest, RejectsMissingOrIllTypedFields) {
  auto parse = [](const char* text) {
    return JobRequest::from_json(Json::parse(text));
  };
  // Missing id / circuit.
  EXPECT_THROW(parse(R"({"type":"submit","circuit":"aag 0 0 0 0 0"})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"type":"submit","id":"j"})"),
               std::invalid_argument);
  // Ill-typed fields.
  EXPECT_THROW(parse(R"({"type":"submit","id":7,"circuit":"x"})"),
               std::invalid_argument);
  EXPECT_THROW(
      parse(R"({"type":"submit","id":"j","circuit":"x","seed":"one"})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse(R"({"type":"submit","id":"j","circuit":"x","deadline_s":-1})"),
      std::invalid_argument);
  EXPECT_THROW(
      parse(R"({"type":"submit","id":"j","circuit":"x","format":"blif"})"),
      std::invalid_argument);
  // Unknown keys are protocol errors, not silently ignored.
  EXPECT_THROW(
      parse(R"({"type":"submit","id":"j","circuit":"x","bogus":1})"),
      std::invalid_argument);
}

// --- FlowParams overrides ---------------------------------------------------

TEST(ApplyFlowParams, AppliesEveryDocumentedKey) {
  Json overrides = Json::parse(R"({
    "rounds": 3, "area_weight": 0.25, "verify": false,
    "fraig_pre": true, "fraig_post": true, "use_choicemap": true,
    "partition": true, "window_size": 512,
    "sa": {"iterations": 7, "moves_per_iteration": 5, "num_threads": 3,
           "initial_temperature": 500.0},
    "rewrite": {"max_iterations": 9, "max_enodes": 1234,
                "time_limit_s": 1.5, "match_threads": 2},
    "mapping": {"cut_size": 3, "num_cuts": 6, "area_recovery": false}
  })");
  FlowParams params;
  apply_flow_params(&params, overrides);
  EXPECT_EQ(params.rounds, 3u);
  EXPECT_DOUBLE_EQ(params.area_weight, 0.25);
  EXPECT_FALSE(params.verify);
  EXPECT_TRUE(params.fraig_pre);
  EXPECT_TRUE(params.fraig_post);
  EXPECT_TRUE(params.use_choicemap);
  EXPECT_TRUE(params.partition);
  EXPECT_EQ(params.window_size, 512u);
  EXPECT_EQ(params.sa.iterations, 7u);
  EXPECT_EQ(params.sa.moves_per_iteration, 5u);
  EXPECT_EQ(params.sa.num_threads, 3u);
  EXPECT_DOUBLE_EQ(params.sa.initial_temperature, 500.0);
  EXPECT_EQ(params.rewrite.max_iterations, 9u);
  EXPECT_EQ(params.rewrite.max_enodes, 1234u);
  EXPECT_DOUBLE_EQ(params.rewrite.time_limit_s, 1.5);
  EXPECT_EQ(params.rewrite.match_threads, 2u);
  EXPECT_EQ(params.mapping.cut_size, 3u);
  EXPECT_EQ(params.mapping.num_cuts, 6u);
  EXPECT_FALSE(params.mapping.area_recovery);
}

TEST(ApplyFlowParams, RejectsUnknownAndIllTypedKeys) {
  FlowParams params;
  Json unknown = Json::parse(R"({"bogus": 1})");
  EXPECT_THROW(apply_flow_params(&params, unknown), std::invalid_argument);
  Json nested = Json::parse(R"({"sa": {"bogus": 1}})");
  EXPECT_THROW(apply_flow_params(&params, nested), std::invalid_argument);
  Json ill_typed = Json::parse(R"({"rounds": "many"})");
  EXPECT_THROW(apply_flow_params(&params, ill_typed), std::invalid_argument);
  Json negative = Json::parse(R"({"rounds": -2})");
  EXPECT_THROW(apply_flow_params(&params, negative), std::invalid_argument);
  Json not_object = Json::parse(R"({"sa": 3})");
  EXPECT_THROW(apply_flow_params(&params, not_object), std::invalid_argument);
}

TEST(ApplyFlowParams, ValidatesPartitionKeys) {
  FlowParams params;
  Json zero = Json::parse(R"({"window_size": 0})");
  EXPECT_THROW(apply_flow_params(&params, zero), std::invalid_argument);
  Json ill_typed = Json::parse(R"({"partition": 1})");
  EXPECT_THROW(apply_flow_params(&params, ill_typed), std::invalid_argument);
  // checkpoint_path is deliberately not a protocol key: clients must not
  // name server-side filesystem paths.
  Json path = Json::parse(R"({"checkpoint_path": "/tmp/x"})");
  EXPECT_THROW(apply_flow_params(&params, path), std::invalid_argument);
  EXPECT_TRUE(params.checkpoint_path.empty());
}

TEST(ParamsFingerprint, SeparatesFlowsAndOverrides) {
  Json empty = Json::object();
  Json rounds2 = Json::parse(R"({"rounds": 2})");
  Json rounds3 = Json::parse(R"({"rounds": 3})");
  EXPECT_EQ(params_fingerprint("emorphic", rounds2),
            params_fingerprint("emorphic", rounds2));
  EXPECT_NE(params_fingerprint("emorphic", rounds2),
            params_fingerprint("emorphic", rounds3));
  EXPECT_NE(params_fingerprint("emorphic", empty),
            params_fingerprint("baseline", empty));
}

TEST(ErrorCodes, HaveStableProtocolStrings) {
  EXPECT_STREQ(to_string(ErrorCode::kOverloaded), "OVERLOADED");
  EXPECT_STREQ(to_string(ErrorCode::kMalformedRequest), "MALFORMED_REQUEST");
  EXPECT_STREQ(to_string(ErrorCode::kMalformedCircuit), "MALFORMED_CIRCUIT");
  EXPECT_STREQ(to_string(ErrorCode::kBadParams), "BAD_PARAMS");
  EXPECT_STREQ(to_string(ErrorCode::kUnknownFlow), "UNKNOWN_FLOW");
  EXPECT_STREQ(to_string(ErrorCode::kShuttingDown), "SHUTTING_DOWN");
  EXPECT_STREQ(to_string(ErrorCode::kInternal), "INTERNAL");
}

}  // namespace
}  // namespace emorphic::service
