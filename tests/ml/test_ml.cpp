#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "../test_helpers.hpp"
#include "benchgen/arith.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "ml/features.hpp"
#include "ml/mlp.hpp"

namespace emorphic {
namespace {

TEST(Features, FixedLengthAndFinite) {
  Rng rng(181);
  Aig aig = testing::random_aig(6, 3, 50, rng);
  FeatureVector f = extract_features(aig);
  for (unsigned i = 0; i < kNumFeatures; ++i) {
    EXPECT_TRUE(std::isfinite(f[i])) << feature_name(i);
  }
  EXPECT_DOUBLE_EQ(f[kNumFeatures - 1], 1.0);  // bias
}

TEST(Features, SensitiveToSizeAndDepth) {
  Aig small = make_adder(4);
  Aig big = make_adder(32);
  FeatureVector fs = extract_features(small);
  FeatureVector fb = extract_features(big);
  EXPECT_LT(fs[0], fb[0]);  // log size
  EXPECT_LT(fs[3], fb[3]);  // log depth
}

TEST(Mlp, LearnsLinearFunction) {
  // y = 3*x0 - 2*x1 + 1 — an MLP must fit this nearly exactly.
  Rng rng(182);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    double x0 = rng.next_double() * 4.0 - 2.0;
    double x1 = rng.next_double() * 4.0 - 2.0;
    X.push_back({x0, x1});
    y.push_back(3.0 * x0 - 2.0 * x1 + 1.0);
  }
  MlpParams params;
  params.epochs = 300;
  Mlp mlp(2, params);
  double loss = mlp.train(X, y);
  EXPECT_LT(loss, 0.01);
  double pred = mlp.predict({1.0, 1.0});
  EXPECT_NEAR(pred, 2.0, 0.3);
}

TEST(Mlp, LearnsMildNonlinearity) {
  Rng rng(183);
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    double x0 = rng.next_double() * 2.0 - 1.0;
    double x1 = rng.next_double() * 2.0 - 1.0;
    X.push_back({x0, x1});
    y.push_back(x0 * x1 + 0.5 * x0);
  }
  MlpParams params;
  params.epochs = 400;
  params.hidden = 16;
  Mlp mlp(2, params);
  double loss = mlp.train(X, y);
  EXPECT_LT(loss, 0.05);
}

TEST(Metrics, MapeBasics) {
  EXPECT_DOUBLE_EQ(mape({110.0}, {100.0}), 10.0);
  EXPECT_DOUBLE_EQ(mape({90.0, 110.0}, {100.0, 100.0}), 10.0);
  EXPECT_DOUBLE_EQ(mape({5.0}, {5.0}), 0.0);
}

TEST(Metrics, KendallTauBasics) {
  EXPECT_DOUBLE_EQ(kendall_tau({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0);
  double mixed = kendall_tau({1, 2, 3, 4}, {1, 3, 2, 4});
  EXPECT_GT(mixed, 0.0);
  EXPECT_LT(mixed, 1.0);
}

TEST(Dataset, GeneratesLabelledVariants) {
  Aig circuit = make_adder(8);
  DatasetParams params;
  params.variants_per_circuit = 8;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 4000;
  Dataset data = generate_variants(circuit, CellLibrary::asap7_like(), params);
  ASSERT_EQ(data.size(), 8u);
  for (double d : data.delays) EXPECT_GT(d, 0.0);
  for (double a : data.areas) EXPECT_GT(a, 0.0);
  // Structural variants must genuinely differ in label.
  double min_delay = *std::min_element(data.delays.begin(), data.delays.end());
  double max_delay = *std::max_element(data.delays.begin(), data.delays.end());
  EXPECT_GT(max_delay, min_delay);
}

TEST(Dataset, SplitPartitionsCompletely) {
  Dataset all;
  for (int i = 0; i < 10; ++i) {
    all.features.push_back(FeatureVector{});
    all.delays.push_back(i);
    all.areas.push_back(i);
  }
  Dataset train, test;
  split_dataset(all, 5, &train, &test);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(test.size(), 2u);
}

TEST(MlCostModel, TrainsAndRanksVariants) {
  Aig circuit = make_multiplier(6);
  DatasetParams params;
  params.variants_per_circuit = 30;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  Dataset data = generate_variants(circuit, CellLibrary::asap7_like(), params);

  MlpParams mp;
  mp.epochs = 150;
  MlCostModel model(mp);
  model.train(data.features, data.delays, data.areas);
  ASSERT_TRUE(model.trained());

  std::vector<double> predictions;
  for (const auto& f : data.features) {
    predictions.push_back(model.predict_delay(f));
  }
  // On its own training data the model must rank far better than chance.
  EXPECT_GT(kendall_tau(predictions, data.delays), 0.3);
}

TEST(MlCostModel, EvaluateBeforeTrainingThrows) {
  MlCostModel model;
  Aig aig = make_adder(4);
  EXPECT_THROW(model.evaluate(aig), std::logic_error);
}

}  // namespace
}  // namespace emorphic
