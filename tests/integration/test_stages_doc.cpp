// docs/stages.md is the stage-registry reference; this test pins it to the
// live registry so the page cannot drift: every registered stage must have
// a table row, and every table row must name a registered stage. Rows are
// recognized by the `| `name` |` first column of the "Registered stages"
// table. EMORPHIC_SOURCE_DIR is injected by CMake so the test finds the
// page regardless of the build directory. It lives in the integration
// suite (not flow) because test_pipeline.cpp registers a throwaway test
// stage into the process-global registry, which this cross-check would
// rightly flag as undocumented.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "flow/pipeline.hpp"

namespace emorphic {
namespace {

std::string stages_doc_path() {
  return std::string(EMORPHIC_SOURCE_DIR) + "/docs/stages.md";
}

/// Stage names from the doc's table: the backticked first column of every
/// row, excluding the header ("Registry name") and separator rows.
std::set<std::string> documented_stages(const std::string& text) {
  std::set<std::string> names;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    // A data row looks like: | `Name` | `Class` | ... |
    if (line.rfind("| `", 0) != 0) continue;
    std::size_t start = 3;
    std::size_t end = line.find('`', start);
    if (end == std::string::npos) continue;
    names.insert(line.substr(start, end - start));
  }
  return names;
}

TEST(StagesDoc, TableMatchesTheLiveRegistry) {
  std::ifstream file(stages_doc_path());
  ASSERT_TRUE(file.good()) << "docs/stages.md not found at "
                           << stages_doc_path();
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::set<std::string> documented = documented_stages(buffer.str());
  ASSERT_FALSE(documented.empty())
      << "no `| `name` |` table rows found in docs/stages.md";

  std::vector<std::string> registered = registered_stage_names();
  for (const std::string& name : registered) {
    EXPECT_TRUE(documented.count(name) != 0)
        << "stage '" << name
        << "' is registered but has no row in docs/stages.md — document it";
  }
  for (const std::string& name : documented) {
    EXPECT_TRUE(std::find(registered.begin(), registered.end(), name) !=
                registered.end())
        << "docs/stages.md documents stage '" << name
        << "', which is not registered — remove or fix the row";
  }
}

TEST(StagesDoc, EveryRegisteredStageInstantiates) {
  // The factory behind every documented name must actually produce a stage
  // whose name() round-trips (the doc links names to behavior).
  for (const std::string& name : registered_stage_names()) {
    StagePtr stage = make_stage(name);
    ASSERT_NE(stage, nullptr) << name;
    EXPECT_EQ(stage->name(), name);
  }
}

}  // namespace
}  // namespace emorphic
