// The repo's end-to-end functional-correctness gate: every registered
// pipeline stage, run on a spread of benchgen circuits and seeds, must
// produce an AIG that SAT-backed cec proves equivalent to its input.
//
// Each stage gets a minimal pipeline harness (some stages only make sense
// with a conversion prefix/suffix around them). The test fails loudly when
// a newly registered stage has no harness entry — adding a stage without
// adding it to this gate is not allowed.

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "cec/cec.hpp"
#include "flow/pipeline.hpp"
#include "../test_helpers.hpp"

namespace emorphic {
namespace {

/// Stage name -> pipeline exercising that stage (with the minimal scaffold
/// it needs). The stage under test must appear in the pipeline.
std::map<std::string, Pipeline> stage_harnesses() {
  std::map<std::string, Pipeline> harness;
  {
    Pipeline p;
    p.add("ResynRounds");
    harness.emplace("ResynRounds", std::move(p));
  }
  {
    Pipeline p;
    p.add("EgraphConversion");  // forward: AIG -> e-graph
    p.add("EgraphConversion");  // backward: greedy extraction back to AIG
    harness.emplace("EgraphConversion", std::move(p));
  }
  {
    Pipeline p;
    p.add("EgraphConversion");
    p.add("Rewrite");
    p.add("EgraphConversion");
    harness.emplace("Rewrite", std::move(p));
  }
  {
    Pipeline p;
    p.add("EgraphConversion");
    p.add("Rewrite");
    p.add("SaExtract");
    p.add("EgraphConversion");
    harness.emplace("SaExtract", std::move(p));
  }
  {
    Pipeline p;
    p.add("TechMap");  // resynth-gated variant exercised via ResynRounds+TechMap in flows
    harness.emplace("TechMap", std::move(p));
  }
  {
    Pipeline p;
    p.add("Cec");
    harness.emplace("Cec", std::move(p));
  }
  {
    Pipeline p;
    p.add("fraig");
    harness.emplace("fraig", std::move(p));
  }
  {
    Pipeline p;
    p.add("EgraphConversion");
    p.add("Rewrite");
    p.add("SaExtract");
    p.add("choicemap");  // exports + maps across the verified choice rings
    harness.emplace("choicemap", std::move(p));
  }
  {
    Pipeline p;
    p.add("lutmap");  // plain k-LUT cover of ctx.current
    harness.emplace("lutmap", std::move(p));
  }
  {
    Pipeline p;
    p.add("partition");  // windowed saturation + stitch (opt/partition.hpp)
    harness.emplace("partition", std::move(p));
  }
  return harness;
}

/// Small, fast parameters: the gate is about function preservation, not QoR.
FlowParams fast_params() {
  FlowParams params;
  params.rounds = 2;
  params.verify = false;  // the test does its own cec on final_aig
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 4000;
  params.rewrite.max_matches_per_rule = 400;
  params.sa.num_threads = 1;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 4;
  params.fraig.conflict_limit = 5000;
  // Small windows so the partition harness exercises real multi-window
  // stitching on the gate circuits (not one degenerate whole-circuit
  // window); the other stages ignore this knob.
  params.window_size = 25;
  return params;
}

std::vector<std::pair<std::string, Aig>> gate_circuits() {
  std::vector<std::pair<std::string, Aig>> circuits;
  circuits.emplace_back("adder5", make_adder(5));
  circuits.emplace_back("multiplier3", make_multiplier(3));
  circuits.emplace_back("arbiter4", make_arbiter(4));
  Rng rng(2024);
  circuits.emplace_back("random", testing::random_aig(6, 4, 60, rng));
  return circuits;
}

TEST(StageEquivalence, EveryRegisteredStageHasAHarness) {
  std::map<std::string, Pipeline> harness = stage_harnesses();
  for (const std::string& name : registered_stage_names()) {
    EXPECT_TRUE(harness.count(name) != 0)
        << "stage '" << name
        << "' is registered but has no entry in the stage-equivalence gate "
           "(tests/integration/test_stage_equivalence.cpp) — add one";
  }
}

TEST(StageEquivalence, EveryStagePreservesCircuitFunction) {
  std::map<std::string, Pipeline> harness = stage_harnesses();
  FlowParams params = fast_params();
  const std::vector<std::uint64_t> seeds{1, 7};

  for (auto& [circuit_name, aig] : gate_circuits()) {
    for (auto& [stage_name, pipeline] : harness) {
      for (std::uint64_t seed : seeds) {
        FlowContext ctx;
        ctx.params = params;
        ctx.input = aig;
        ctx.seed = seed;
        FlowResult result = pipeline.run(ctx);
        CecResult check = cec(aig, result.final_aig);
        ASSERT_EQ(check.status, CecStatus::kEquivalent)
            << "stage '" << stage_name << "' broke circuit '" << circuit_name
            << "' (seed " << seed << ")";
      }
    }
  }
}

TEST(StageEquivalence, ChoicemapNetlistIsEquivalentEndToEnd) {
  // The generic gate above compares input vs. final_aig, but choicemap's
  // real product is the mapped netlist built across the choice rings —
  // final_aig is the plain extraction, which a broken choice cut or phase
  // would not perturb. Check the netlist itself, end to end.
  Pipeline p;
  p.add("EgraphConversion");
  p.add("Rewrite");
  p.add("SaExtract");
  p.add("choicemap");
  FlowParams params = fast_params();
  for (auto& [circuit_name, aig] : gate_circuits()) {
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7}}) {
      FlowContext ctx;
      ctx.params = params;
      ctx.input = aig;
      ctx.seed = seed;
      FlowResult result = p.run(ctx);
      ASSERT_TRUE(result.netlist.has_value());
      ASSERT_EQ(cec(aig, result.netlist->to_aig()).status,
                CecStatus::kEquivalent)
          << "choicemap produced a non-equivalent netlist on '"
          << circuit_name << "' (seed " << seed << ")";
    }
  }
}

TEST(StageEquivalence, LutmapNetlistIsEquivalentEndToEnd) {
  // Same rationale as the choicemap netlist gate: lutmap's real product is
  // the LUT cover, so the gate proves the cover itself — re-expressed as
  // an AIG via LutNetwork::to_aig — equivalent to the pipeline input, on
  // both the plain tail and the choice-aware tail.
  FlowParams params = fast_params();
  Pipeline plain;
  plain.add("lutmap");

  FlowParams choice_params = params;
  choice_params.use_choicemap = true;  // routes lutmap through the rings
  Pipeline choicy;
  choicy.add("EgraphConversion");
  choicy.add("Rewrite");
  choicy.add("SaExtract");
  choicy.add("lutmap");

  for (auto& [circuit_name, aig] : gate_circuits()) {
    for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7}}) {
      for (bool choices : {false, true}) {
        FlowContext ctx;
        ctx.params = choices ? choice_params : params;
        ctx.input = aig;
        ctx.seed = seed;
        FlowResult result = (choices ? choicy : plain).run(ctx);
        ASSERT_TRUE(result.lut_netlist.has_value());
        ASSERT_FALSE(result.netlist.has_value())
            << "lutmap must not leave a stale cell netlist behind";
        ASSERT_EQ(cec(aig, result.lut_netlist->to_aig()).status,
                  CecStatus::kEquivalent)
            << "lutmap produced a non-equivalent cover on '" << circuit_name
            << "' (seed " << seed << ", choices=" << choices << ")";
      }
    }
  }
}

TEST(StageEquivalence, LutmapRejectsInvalidLutSizeAtTheGate) {
  // An unharnessed LUT size must fail loudly (std::invalid_argument from
  // map_to_luts), never silently clamp into a wrong-width cover.
  Pipeline p;
  p.add("lutmap");
  Aig aig = make_adder(4);
  for (unsigned bad : {1u, 7u}) {
    FlowParams params = fast_params();
    params.lut_size = bad;
    FlowContext ctx;
    ctx.params = params;
    ctx.input = aig;
    EXPECT_THROW(p.run(ctx), std::invalid_argument) << "lut_size=" << bad;
  }
}

TEST(StageEquivalence, LutmapPrebuiltFlowsStayEquivalent) {
  // The use_lutmap wiring of the prebuilt flows: baseline and emorphic
  // (with and without use_choicemap) must all end in an equivalent cover.
  Aig aig = make_adder(5);
  for (bool choicemap : {false, true}) {
    FlowParams params = fast_params();
    params.use_lutmap = true;
    params.use_choicemap = choicemap;
    for (const Pipeline& pipeline :
         {Pipeline::baseline(params), Pipeline::emorphic(params)}) {
      FlowResult result = pipeline.run(aig, params);
      ASSERT_TRUE(result.lut_netlist.has_value());
      ASSERT_EQ(cec(aig, result.lut_netlist->to_aig()).status,
                CecStatus::kEquivalent)
          << "use_choicemap=" << choicemap;
      ASSERT_EQ(cec(aig, result.final_aig).status, CecStatus::kEquivalent);
    }
  }
}

TEST(StageEquivalence, PartitionFlowStitchStaysEquivalent) {
  // The prebuilt partition-mode pipeline (fraig_pre + partition + Cec):
  // every gate circuit must stitch back SAT-provably equivalent, across
  // multiple windows.
  FlowParams params = fast_params();
  params.partition = true;
  params.window_size = 20;
  params.verify = true;
  for (auto& [circuit_name, aig] : gate_circuits()) {
    FlowResult result = Pipeline::emorphic(params).run(aig, params);
    ASSERT_TRUE(result.partition_stats.completed) << circuit_name;
    EXPECT_GT(result.partition_stats.num_windows, 1u) << circuit_name;
    ASSERT_EQ(result.verify_status, CecStatus::kEquivalent) << circuit_name;
    ASSERT_EQ(cec(aig, result.final_aig).status, CecStatus::kEquivalent)
        << "partition flow broke circuit '" << circuit_name << "'";
  }
}

TEST(StageEquivalence, FraigWiredFlowsStayEquivalent) {
  // The opt-in pre/post fraig placements in the prebuilt flows.
  FlowParams params = fast_params();
  params.fraig_pre = true;
  params.fraig_post = true;
  Aig aig = make_adder(5);
  for (const Pipeline& pipeline :
       {Pipeline::baseline(params), Pipeline::emorphic(params)}) {
    FlowResult result = pipeline.run(aig, params);
    ASSERT_EQ(cec(aig, result.final_aig).status, CecStatus::kEquivalent);
  }
}

}  // namespace
}  // namespace emorphic
