// End-to-end integration tests: the complete E-morphic pipeline on real
// (scaled) benchmark circuits, both cost-model modes, with SAT-backed
// equivalence checking — the full Fig. 5 loop.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/emorphic.hpp"

namespace emorphic {
namespace {

FlowParams quick_params() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 10000;
  params.rewrite.time_limit_s = 5.0;
  params.sa.num_threads = 2;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.cec_params.conflict_limit = 100000;
  return params;
}

TEST(Integration, QualityModeOnAdder) {
  Aig adder = make_adder(8);
  EmorphicOptions options;
  options.flow = quick_params();
  options.mode = CostModelMode::kQualityPrioritized;
  EmorphicResult result = optimize(adder, options);
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
  EXPECT_GT(result.qor.delay, 0.0);
}

TEST(Integration, RuntimeModeSelfTrains) {
  Aig mult = make_multiplier(6);
  EmorphicOptions options;
  options.flow = quick_params();
  options.flow.verify = true;
  options.mode = CostModelMode::kRuntimePrioritized;
  EmorphicResult result = optimize(mult, options);
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
}

TEST(Integration, RuntimeModeWithPretrainedModel) {
  Aig circuit = make_sin(6);
  DatasetParams dp;
  dp.variants_per_circuit = 16;
  dp.rewrite.max_iterations = 2;
  dp.rewrite.max_enodes = 6000;
  Dataset data = generate_variants(circuit, CellLibrary::asap7_like(), dp);
  MlpParams mp;
  mp.epochs = 60;
  MlCostModel model(mp);
  model.train(data.features, data.delays, data.areas);

  EmorphicOptions options;
  options.flow = quick_params();
  options.mode = CostModelMode::kRuntimePrioritized;
  options.ml_model = &model;
  EmorphicResult result = optimize(circuit, options);
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
}

TEST(Integration, EveryEpflCircuitSurvivesTheQuickPipeline) {
  // Smoke the full pipeline on the three smallest registry circuits (the
  // full sweep is the Table II bench, not a unit test).
  for (const char* name : {"adder", "sin", "arbiter"}) {
    Aig circuit = make_epfl(name);
    FlowParams params = quick_params();
    EmorphicResult result = emorphic_flow(circuit, params);
    EXPECT_EQ(result.verify_status, CecStatus::kEquivalent) << name;
    EXPECT_GT(result.egraph_enodes, result.initial_enodes) << name;
  }
}

TEST(Integration, IoRoundTripThroughEquationFormat) {
  // Fig. 5's pre/post-processing path: equation text -> AIG -> optimize ->
  // equation text, with equivalence verified.
  Aig original = make_adder(6);
  std::string eq = write_equations(original);
  Aig parsed = read_equations(eq);
  FlowParams params = quick_params();
  EmorphicResult result = emorphic_flow(parsed, params);
  EXPECT_EQ(result.verify_status, CecStatus::kEquivalent);
  std::string eq_out = write_equations(result.final_aig);
  Aig reparsed = read_equations(eq_out);
  EXPECT_EQ(cec(original, reparsed).status, CecStatus::kEquivalent);
}

TEST(Integration, VersionString) {
  EXPECT_NE(std::string(version()).find("emorphic"), std::string::npos);
}

}  // namespace
}  // namespace emorphic
