#include "util/small_vec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace emorphic {
namespace {

TEST(SmallVec, InlineThenSpill) {
  SmallVec<std::uint32_t, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  v.push_back(4);               // spills to the heap
  EXPECT_GT(v.capacity(), 4u);
  ASSERT_EQ(v.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVec, GrowthPreservesContents) {
  SmallVec<std::uint64_t, 2> v;
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(SmallVec, CopyAndMove) {
  SmallVec<int, 2> small;
  small.push_back(1);
  small.push_back(2);
  SmallVec<int, 2> big;
  for (int i = 0; i < 100; ++i) big.push_back(i);

  SmallVec<int, 2> small_copy = small;
  SmallVec<int, 2> big_copy = big;
  EXPECT_EQ(small_copy.size(), 2u);
  EXPECT_EQ(small_copy[1], 2);
  EXPECT_EQ(big_copy.size(), 100u);
  EXPECT_EQ(big_copy[99], 99);

  SmallVec<int, 2> small_moved = std::move(small);
  SmallVec<int, 2> big_moved = std::move(big);
  EXPECT_EQ(small_moved.size(), 2u);
  EXPECT_EQ(big_moved.size(), 100u);
  EXPECT_EQ(big_moved[42], 42);
  EXPECT_TRUE(small.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(big.empty());    // NOLINT(bugprone-use-after-move)

  big_copy = small_copy;  // shrink via copy-assign
  EXPECT_EQ(big_copy.size(), 2u);
  small_copy = std::move(big_moved);
  EXPECT_EQ(small_copy.size(), 100u);
}

TEST(SmallVec, AppendAndIteration) {
  std::vector<int> source{1, 2, 3, 4, 5, 6, 7};
  SmallVec<int, 2> v;
  v.append(source.data(), source.data() + source.size());
  EXPECT_EQ(v.size(), 7u);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 28);
}

TEST(SmallVec, ClearAndShrinkReturnInline) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.shrink_to_fit();
  EXPECT_EQ(v.capacity(), 2u);
  v.push_back(9);
  EXPECT_EQ(v[0], 9);
}

TEST(SmallVec, PushBackOwnElementAtCapacity) {
  // Regression for the self-alias use-after-free: push_back(v[0]) exactly
  // when size == capacity used to grow (freeing the old heap buffer) and
  // then copy from the freed storage. ASan flags the broken version as a
  // heap-use-after-free; without ASan the value silently corrupts.
  SmallVec<std::uint32_t, 4> v;
  v.push_back(0xA11CE);
  while (v.size() < v.capacity()) v.push_back(v.size());
  v.push_back(v[0]);  // at capacity: grow() relocates the element mid-call
  EXPECT_EQ(v.back(), 0xA11CEu);

  // Same hazard on every later growth boundary, including heap-to-heap.
  for (int round = 0; round < 10; ++round) {
    while (v.size() < v.capacity()) v.push_back(7);
    v.push_back(v[0]);
    EXPECT_EQ(v.back(), 0xA11CEu);
  }
}

TEST(SmallVec, PushBackBackElementAtCapacity) {
  // The other alias direction: the last element, which grow() copies too.
  SmallVec<std::uint64_t, 2> v;
  v.push_back(1);
  v.push_back(0xFEED);  // now at inline capacity
  v.push_back(v.back());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 0xFEEDu);
}

TEST(SmallVec, AtThrowsOutOfRange) {
  SmallVec<int, 2> v;
  v.push_back(1);
  EXPECT_EQ(v.at(0), 1);
  EXPECT_THROW(v.at(1), std::out_of_range);
}

TEST(SmallVec, EmplaceBackConstructsAggregates) {
  struct Pairish {
    int a;
    int b;
  };
  SmallVec<Pairish, 2> v;
  v.emplace_back(1, 2);
  v.emplace_back(3, 4);
  v.emplace_back(5, 6);
  EXPECT_EQ(v[2].a, 5);
  EXPECT_EQ(v[2].b, 6);
}

}  // namespace
}  // namespace emorphic
