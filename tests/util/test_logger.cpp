// Thread-safety tests for util/logger: the synthesis daemon logs from
// session threads and flow workers concurrently, so every emitted line must
// arrive intact (no interleaved fragments) and threshold flips must be safe
// to do while other threads log.

#include "util/logger.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace emorphic {
namespace {

/// RAII: redirect the logger into a private stream and restore on exit so
/// other tests keep their stderr behavior and threshold.
class SinkCapture {
 public:
  SinkCapture() : previous_threshold_(Logger::threshold()) {
    Logger::set_sink(&stream_);
    Logger::set_threshold(LogLevel::kDebug);
  }
  ~SinkCapture() {
    Logger::set_sink(nullptr);
    Logger::set_threshold(previous_threshold_);
  }
  std::string text() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  LogLevel previous_threshold_;
};

TEST(Logger, FormatsOneLinePerMessage) {
  SinkCapture capture;
  log_info() << "hello " << 42;
  log_warn() << "watch out";
  EXPECT_EQ(capture.text(), "[INFO] hello 42\n[WARN] watch out\n");
}

TEST(Logger, ThresholdFilters) {
  SinkCapture capture;
  Logger::set_threshold(LogLevel::kWarn);
  log_debug() << "dropped";
  log_info() << "dropped too";
  log_error() << "kept";
  EXPECT_EQ(capture.text(), "[ERROR] kept\n");
}

TEST(Logger, ConcurrentWritersNeverInterleaveWithinALine) {
  SinkCapture capture;
  constexpr int kThreads = 8;
  constexpr int kLines = 200;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      // Long payloads make torn writes likely if the sink is not guarded
      // per line: each worker's payload is one repeated character, so any
      // interleaving corrupts the homogeneous body.
      std::string body(256, static_cast<char>('a' + t));
      for (int k = 0; k < kLines; ++k) {
        log_info() << "w" << t << " " << body;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::istringstream in(capture.text());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    ASSERT_EQ(line.rfind("[INFO] w", 0), 0u) << "torn line: " << line;
    std::string body = line.substr(line.find_last_of(' ') + 1);
    ASSERT_EQ(body.size(), 256u) << "torn line: " << line;
    // The body must be homogeneous — a single writer's characters only.
    EXPECT_TRUE(std::all_of(body.begin(), body.end(),
                            [&](char c) { return c == body[0]; }))
        << "interleaved line: " << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(Logger, ThresholdFlipsAreSafeWhileLogging) {
  SinkCapture capture;
  std::thread flipper([] {
    for (int i = 0; i < 500; ++i) {
      Logger::set_threshold(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
    }
    Logger::set_threshold(LogLevel::kDebug);
  });
  std::thread writer([] {
    for (int i = 0; i < 500; ++i) log_info() << "tick " << i;
  });
  flipper.join();
  writer.join();
  // No crash / no torn lines is the property; the count depends on timing.
  std::istringstream in(capture.text());
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("[INFO] tick ", 0), 0u);
  }
}

}  // namespace
}  // namespace emorphic
