#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "egraph/hashcons.hpp"

namespace emorphic {
namespace {

// --- BumpArena ---------------------------------------------------------------

TEST(BumpArena, AllocationsAreDisjointAndAligned) {
  BumpArena arena;
  std::vector<std::uint64_t*> ptrs;
  for (int i = 0; i < 100; ++i) {
    auto* p = arena.alloc<std::uint64_t>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t), 0u);
    p[0] = p[1] = p[2] = static_cast<std::uint64_t>(i);
    ptrs.push_back(p);
  }
  // Nothing overwrote anything else.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ptrs[i][0], static_cast<std::uint64_t>(i));
    EXPECT_EQ(ptrs[i][2], static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(arena.used(), 100u * 3u * sizeof(std::uint64_t));
}

TEST(BumpArena, OverAlignedRequestsAreHonored) {
  BumpArena arena;
  static_cast<void>(arena.alloc_bytes(1, 1));  // misalign the bump pointer
  void* p = arena.alloc_bytes(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

TEST(BumpArena, ResetKeepsCapacityAndCoalesces) {
  BumpArena arena;
  // Force several blocks with allocations larger than kMinBlock.
  for (int i = 0; i < 4; ++i) static_cast<void>(arena.alloc_bytes(8192, 8));
  std::size_t cap = arena.capacity();
  EXPECT_GE(cap, 4u * 8192u);

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.capacity(), cap);
  EXPECT_EQ(arena.block_count(), 1u);  // coalesced

  // A same-sized epoch now fits in the single warm block: no new mallocs.
  std::uint64_t before = arena_block_allocs();
  for (int i = 0; i < 4; ++i) static_cast<void>(arena.alloc_bytes(8192, 8));
  arena.reset();
#ifdef EMORPHIC_CHECKS
  EXPECT_EQ(arena_block_allocs(), before);
#else
  EXPECT_EQ(before, 0u);  // counter compiled out
#endif
}

TEST(BumpArena, MoveTransfersOwnershipAndKeepsPointersValid) {
  BumpArena a;
  auto* p = a.alloc<std::uint32_t>(8);
  p[7] = 0xBEEF;
  BumpArena b = std::move(a);
  EXPECT_EQ(p[7], 0xBEEFu);  // storage moved with the arena
  EXPECT_EQ(a.capacity(), 0u);
  EXPECT_GT(b.capacity(), 0u);
  b.release();
  EXPECT_EQ(b.capacity(), 0u);
}

// --- PoolAllocator -----------------------------------------------------------

TEST(PoolAllocator, RecyclesFreedSlots) {
  PoolAllocator<std::uint64_t> pool;
  std::uint64_t* a = pool.allocate();
  std::uint64_t* b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.high_water(), 2u);

  pool.deallocate(a);
  EXPECT_EQ(pool.free_count(), 1u);
  std::uint64_t* c = pool.allocate();
  EXPECT_EQ(c, a);  // LIFO reuse of the freed slot
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.high_water(), 2u);  // no fresh slot was bump-allocated
}

TEST(PoolAllocator, SteadyStateChurnsWithoutMallocs) {
  PoolAllocator<std::uint64_t> pool;
  std::vector<std::uint64_t*> live;
  for (int i = 0; i < 256; ++i) live.push_back(pool.allocate());
  std::uint64_t before = arena_block_allocs();
  // Alloc/free churn at constant population: the free list absorbs it all.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) {
      pool.deallocate(live.back());
      live.pop_back();
    }
    for (int i = 0; i < 64; ++i) live.push_back(pool.allocate());
  }
  EXPECT_EQ(arena_block_allocs(), before);
  EXPECT_EQ(pool.high_water(), 256u);
}

// --- ArenaSpan / SpanStore ---------------------------------------------------

TEST(SpanStore, PushBackGrowsAndPreservesContents) {
  SpanStore<std::uint32_t> store;
  ArenaSpan<std::uint32_t> span;
  for (std::uint32_t i = 0; i < 1000; ++i) store.push_back(span, i * 7);
  ASSERT_EQ(span.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(span[i], i * 7);
  EXPECT_EQ(store.live(), 1000u);
  EXPECT_GT(store.waste(), 0u);  // growth retired the smaller regions
}

TEST(SpanStore, PushBackSelfAliasIsSafe) {
  // The arena twin of the SmallVec::push_back self-alias bug: pushing
  // span[0] exactly when the span is at capacity must copy the value before
  // growth retires the old region. Under ASan the broken version reads
  // freed/retired memory.
  SpanStore<std::uint32_t> store;
  ArenaSpan<std::uint32_t> span;
  store.push_back(span, 12345);
  while (span.size() < span.capacity()) {
    store.push_back(span, span.size());
  }
  store.push_back(span, span[0]);  // at capacity: growth relocates span[0]
  EXPECT_EQ(span.back(), 12345u);
}

TEST(SpanStore, ManySpansShareOneArena) {
  SpanStore<std::uint16_t> store;
  std::vector<ArenaSpan<std::uint16_t>> spans(64);
  for (std::uint16_t round = 0; round < 8; ++round) {
    for (std::uint16_t s = 0; s < 64; ++s) {
      store.push_back(spans[s], static_cast<std::uint16_t>(s * 100 + round));
    }
  }
  for (std::uint16_t s = 0; s < 64; ++s) {
    ASSERT_EQ(spans[s].size(), 8u);
    for (std::uint16_t round = 0; round < 8; ++round) {
      EXPECT_EQ(spans[s][round], s * 100 + round);
    }
  }
}

TEST(SpanStore, AppendFromSiblingSpanIsAllowed) {
  SpanStore<std::uint32_t> store;
  ArenaSpan<std::uint32_t> a;
  ArenaSpan<std::uint32_t> b;
  for (std::uint32_t i = 0; i < 16; ++i) store.push_back(a, i);
  for (std::uint32_t i = 0; i < 4; ++i) store.push_back(b, 100 + i);
  // The e-graph merge pattern: drain one sibling span into another.
  store.append(b, a.data(), a.data() + a.size());
  store.release(a);
  ASSERT_EQ(b.size(), 20u);
  EXPECT_EQ(b[0], 100u);
  EXPECT_EQ(b[4], 0u);
  EXPECT_EQ(b[19], 15u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(SpanStore, AssignReplacesContents) {
  SpanStore<std::uint32_t> store;
  ArenaSpan<std::uint32_t> span;
  for (std::uint32_t i = 0; i < 10; ++i) store.push_back(span, i);
  std::vector<std::uint32_t> replacement{42, 43};
  store.assign(span, replacement.data(),
               replacement.data() + replacement.size());
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0], 42u);
  EXPECT_EQ(span[1], 43u);
  EXPECT_EQ(store.live(), 2u);
}

TEST(SpanStore, CompactReclaimsWasteAndKeepsContents) {
  SpanStore<std::uint32_t> store;
  std::vector<ArenaSpan<std::uint32_t>> spans(32);
  // Grow each span repeatedly so plenty of retired regions accumulate.
  for (std::uint32_t round = 0; round < 100; ++round) {
    for (std::uint32_t s = 0; s < 32; ++s) {
      store.push_back(spans[s], s * 1000 + round);
    }
  }
  // Release half of them (the e-graph's merged-away classes).
  for (std::uint32_t s = 1; s < 32; s += 2) store.release(spans[s]);
  EXPECT_GT(store.waste(), 0u);

  store.compact(spans);
  EXPECT_EQ(store.waste(), 0u);
  EXPECT_EQ(store.live(), 16u * 100u);
  for (std::uint32_t s = 0; s < 32; s += 2) {
    ASSERT_EQ(spans[s].size(), 100u);
    EXPECT_EQ(spans[s].capacity(), spans[s].size());  // tight after compact
    for (std::uint32_t round = 0; round < 100; ++round) {
      EXPECT_EQ(spans[s][round], s * 1000 + round);
    }
  }
  for (std::uint32_t s = 1; s < 32; s += 2) EXPECT_TRUE(spans[s].empty());
}

TEST(SpanStore, SteadyStateEpochsStopAllocatingBlocks) {
  SpanStore<std::uint64_t> store;
  std::vector<ArenaSpan<std::uint64_t>> spans(16);
  auto run_epoch = [&] {
    for (auto& s : spans) s = ArenaSpan<std::uint64_t>{};
    store.reset();
    for (std::uint64_t i = 0; i < 2000; ++i) {
      store.push_back(spans[i % 16], i);
    }
  };
  run_epoch();  // warm-up: blocks get allocated and coalesced by reset()
  run_epoch();  // second warm-up: coalescing may still grow the single block
  std::uint64_t before = arena_block_allocs();
  for (int epoch = 0; epoch < 10; ++epoch) run_epoch();
  EXPECT_EQ(arena_block_allocs(), before)
      << "steady-state epochs must reuse the warm block";
}

// --- HashCons::reserve (the off-by-one satellite fix) ------------------------

ENode key_node(std::uint32_t i) { return ENode::var(i); }

TEST(HashCons, ReserveMeansNoRehashDuringInsert) {
  // try_emplace grows when (used_+1)*8 >= slots*7. The old reserve used
  // `cap * 7 < n * 8` and under-sized the table exactly at the 7/8 boundary
  // (n = 14 got 16 slots; the 14th insert rehashed anyway). Pin: after
  // reserve(n), inserting n entries never changes capacity().
  for (std::size_t n = 1; n <= 512; ++n) {
    HashCons table;
    table.reserve(n);
    std::size_t cap = table.capacity();
    ASSERT_GT(cap, 0u);
    for (std::size_t i = 0; i < n; ++i) {
      table.insert(key_node(static_cast<std::uint32_t>(i)),
                   static_cast<EClassId>(i));
    }
    EXPECT_EQ(table.capacity(), cap) << "reserve(" << n << ") under-sized";
    EXPECT_EQ(table.size(), n);
  }
}

TEST(HashCons, ClearKeepsCapacityAndForgetsEntries) {
  HashCons table;
  for (std::uint32_t i = 0; i < 100; ++i) {
    table.insert(key_node(i), static_cast<EClassId>(i));
  }
  std::size_t cap = table.capacity();
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), cap);
  EXPECT_EQ(table.find(key_node(3)), nullptr);
  // Reusable after clear (the EGraph::repair scratch pattern).
  table.insert(key_node(7), 7);
  EXPECT_NE(table.find(key_node(7)), nullptr);
}

}  // namespace
}  // namespace emorphic
