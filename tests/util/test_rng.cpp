#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace emorphic {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsRoughlyHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(23);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(23);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[i]);
}

}  // namespace
}  // namespace emorphic
