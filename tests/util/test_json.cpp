#include "util/json.hpp"

#include <gtest/gtest.h>

namespace emorphic {
namespace {

TEST(Json, RoundTripScalars) {
  EXPECT_EQ(Json::parse("null").type(), Json::Type::kNull);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, RoundTripNested) {
  const std::string text = R"({"a":[1,2,{"b":"x"}],"c":true})";
  Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("a").as_array().size(), 3u);
  EXPECT_EQ(doc.at("a").as_array()[2].at("b").as_string(), "x");
  EXPECT_TRUE(doc.at("c").as_bool());
  // dump -> parse -> dump is a fixpoint
  std::string dumped = doc.dump();
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);
}

TEST(Json, EscapeHandling) {
  Json v(std::string("a\"b\\c\nd"));
  Json parsed = Json::parse(v.dump());
  EXPECT_EQ(parsed.as_string(), "a\"b\\c\nd");
}

TEST(Json, BuilderInterface) {
  Json doc = Json::object();
  doc["x"] = 1;
  doc["y"].push_back(Json("a"));
  doc["y"].push_back(Json("b"));
  EXPECT_EQ(doc.at("x").as_int(), 1);
  EXPECT_EQ(doc.at("y").as_array().size(), 2u);
  EXPECT_TRUE(doc.contains("x"));
  EXPECT_FALSE(doc.contains("z"));
}

TEST(Json, IntegersPrintWithoutDecimals) {
  Json v(static_cast<std::int64_t>(123456789));
  EXPECT_EQ(v.dump(), "123456789");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);
  EXPECT_THROW(Json::parse(""), JsonParseError);
}

TEST(Json, MissingKeyThrows) {
  Json doc = Json::parse("{\"a\":1}");
  EXPECT_THROW(doc.at("b"), JsonParseError);
}

TEST(Json, PrettyPrintParses) {
  Json doc = Json::parse(R"({"k":[1,2],"m":{"n":true}})");
  Json again = Json::parse(doc.dump(2));
  EXPECT_EQ(again.dump(), doc.dump());
}

}  // namespace
}  // namespace emorphic
