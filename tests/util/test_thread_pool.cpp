#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace emorphic {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, TasksCanSubmitWork) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.parallel_for(8, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A task that calls parallel_for on its own pool used to deadlock: the
  // outer tasks occupy every worker while each waits for inner work that no
  // free worker exists to run. The guard detects re-entry from a worker
  // thread and runs the loop body inline instead.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, NestedSubmitRunsInline) {
  ThreadPool pool(1);  // one worker: a blocking nested wait can never finish
  std::atomic<int> value{0};
  auto outer = pool.submit([&] {
    auto inner = pool.submit([&] { value.store(42); });
    // Safe to block on: the guard already ran the inner task inline.
    inner.get();
  });
  outer.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, NestedParallelForFromSubmittedTask) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(32);
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 6; ++t) {  // more tasks than workers
    futures.push_back(pool.submit(
        [&] { pool.parallel_for(32, [&](std::size_t i) { ++hits[i]; }); }));
  }
  for (auto& f : futures) f.get();
  for (auto& h : hits) EXPECT_EQ(h.load(), 6);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor must wait for queued tasks before joining
  EXPECT_EQ(counter.load(), 16);
}

}  // namespace
}  // namespace emorphic
