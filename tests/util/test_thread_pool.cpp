#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace emorphic {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, TasksCanSubmitWork) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.parallel_for(8, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor must wait for queued tasks before joining
  EXPECT_EQ(counter.load(), 16);
}

}  // namespace
}  // namespace emorphic
