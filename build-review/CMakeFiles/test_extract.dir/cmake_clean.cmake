file(REMOVE_RECURSE
  "CMakeFiles/test_extract.dir/tests/extract/test_exact.cpp.o"
  "CMakeFiles/test_extract.dir/tests/extract/test_exact.cpp.o.d"
  "CMakeFiles/test_extract.dir/tests/extract/test_extractor.cpp.o"
  "CMakeFiles/test_extract.dir/tests/extract/test_extractor.cpp.o.d"
  "CMakeFiles/test_extract.dir/tests/extract/test_sa.cpp.o"
  "CMakeFiles/test_extract.dir/tests/extract/test_sa.cpp.o.d"
  "tests/test_extract"
  "tests/test_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
