# Empty compiler generated dependencies file for bench_micro_egraph.
# This may be replaced when dependencies are built.
