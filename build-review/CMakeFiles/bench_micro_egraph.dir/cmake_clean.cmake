file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_egraph.dir/bench/micro_egraph.cpp.o"
  "CMakeFiles/bench_micro_egraph.dir/bench/micro_egraph.cpp.o.d"
  "bench/micro_egraph"
  "bench/micro_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
