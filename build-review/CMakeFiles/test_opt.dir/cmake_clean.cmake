file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/tests/opt/test_balance.cpp.o"
  "CMakeFiles/test_opt.dir/tests/opt/test_balance.cpp.o.d"
  "CMakeFiles/test_opt.dir/tests/opt/test_refactor.cpp.o"
  "CMakeFiles/test_opt.dir/tests/opt/test_refactor.cpp.o.d"
  "CMakeFiles/test_opt.dir/tests/opt/test_sop.cpp.o"
  "CMakeFiles/test_opt.dir/tests/opt/test_sop.cpp.o.d"
  "CMakeFiles/test_opt.dir/tests/opt/test_sop_balance.cpp.o"
  "CMakeFiles/test_opt.dir/tests/opt/test_sop_balance.cpp.o.d"
  "tests/test_opt"
  "tests/test_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
