
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/opt/test_balance.cpp" "CMakeFiles/test_opt.dir/tests/opt/test_balance.cpp.o" "gcc" "CMakeFiles/test_opt.dir/tests/opt/test_balance.cpp.o.d"
  "/root/repo/tests/opt/test_refactor.cpp" "CMakeFiles/test_opt.dir/tests/opt/test_refactor.cpp.o" "gcc" "CMakeFiles/test_opt.dir/tests/opt/test_refactor.cpp.o.d"
  "/root/repo/tests/opt/test_sop.cpp" "CMakeFiles/test_opt.dir/tests/opt/test_sop.cpp.o" "gcc" "CMakeFiles/test_opt.dir/tests/opt/test_sop.cpp.o.d"
  "/root/repo/tests/opt/test_sop_balance.cpp" "CMakeFiles/test_opt.dir/tests/opt/test_sop_balance.cpp.o" "gcc" "CMakeFiles/test_opt.dir/tests/opt/test_sop_balance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/emorphic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
