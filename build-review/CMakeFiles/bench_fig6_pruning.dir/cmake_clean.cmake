file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pruning.dir/bench/fig6_pruning.cpp.o"
  "CMakeFiles/bench_fig6_pruning.dir/bench/fig6_pruning.cpp.o.d"
  "bench/fig6_pruning"
  "bench/fig6_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
