file(REMOVE_RECURSE
  "CMakeFiles/test_benchgen.dir/tests/benchgen/test_benchgen.cpp.o"
  "CMakeFiles/test_benchgen.dir/tests/benchgen/test_benchgen.cpp.o.d"
  "tests/test_benchgen"
  "tests/test_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
