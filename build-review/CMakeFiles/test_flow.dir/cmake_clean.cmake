file(REMOVE_RECURSE
  "CMakeFiles/test_flow.dir/tests/flow/test_conversion.cpp.o"
  "CMakeFiles/test_flow.dir/tests/flow/test_conversion.cpp.o.d"
  "CMakeFiles/test_flow.dir/tests/flow/test_flows.cpp.o"
  "CMakeFiles/test_flow.dir/tests/flow/test_flows.cpp.o.d"
  "CMakeFiles/test_flow.dir/tests/flow/test_pipeline.cpp.o"
  "CMakeFiles/test_flow.dir/tests/flow/test_pipeline.cpp.o.d"
  "tests/test_flow"
  "tests/test_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
