file(REMOVE_RECURSE
  "CMakeFiles/test_aig.dir/tests/aig/test_aig.cpp.o"
  "CMakeFiles/test_aig.dir/tests/aig/test_aig.cpp.o.d"
  "CMakeFiles/test_aig.dir/tests/aig/test_aig_io.cpp.o"
  "CMakeFiles/test_aig.dir/tests/aig/test_aig_io.cpp.o.d"
  "CMakeFiles/test_aig.dir/tests/aig/test_cut.cpp.o"
  "CMakeFiles/test_aig.dir/tests/aig/test_cut.cpp.o.d"
  "CMakeFiles/test_aig.dir/tests/aig/test_sim.cpp.o"
  "CMakeFiles/test_aig.dir/tests/aig/test_sim.cpp.o.d"
  "CMakeFiles/test_aig.dir/tests/aig/test_truth.cpp.o"
  "CMakeFiles/test_aig.dir/tests/aig/test_truth.cpp.o.d"
  "tests/test_aig"
  "tests/test_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
