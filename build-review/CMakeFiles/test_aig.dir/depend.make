# Empty dependencies file for test_aig.
# This may be replaced when dependencies are built.
