# Empty dependencies file for test_cec.
# This may be replaced when dependencies are built.
