file(REMOVE_RECURSE
  "CMakeFiles/test_cec.dir/tests/cec/test_cec.cpp.o"
  "CMakeFiles/test_cec.dir/tests/cec/test_cec.cpp.o.d"
  "tests/test_cec"
  "tests/test_cec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
