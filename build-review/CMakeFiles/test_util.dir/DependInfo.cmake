
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_json.cpp" "CMakeFiles/test_util.dir/tests/util/test_json.cpp.o" "gcc" "CMakeFiles/test_util.dir/tests/util/test_json.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "CMakeFiles/test_util.dir/tests/util/test_rng.cpp.o" "gcc" "CMakeFiles/test_util.dir/tests/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_small_vec.cpp" "CMakeFiles/test_util.dir/tests/util/test_small_vec.cpp.o" "gcc" "CMakeFiles/test_util.dir/tests/util/test_small_vec.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "CMakeFiles/test_util.dir/tests/util/test_thread_pool.cpp.o" "gcc" "CMakeFiles/test_util.dir/tests/util/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/emorphic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
