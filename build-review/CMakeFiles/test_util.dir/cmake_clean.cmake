file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/tests/util/test_json.cpp.o"
  "CMakeFiles/test_util.dir/tests/util/test_json.cpp.o.d"
  "CMakeFiles/test_util.dir/tests/util/test_rng.cpp.o"
  "CMakeFiles/test_util.dir/tests/util/test_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/tests/util/test_small_vec.cpp.o"
  "CMakeFiles/test_util.dir/tests/util/test_small_vec.cpp.o.d"
  "CMakeFiles/test_util.dir/tests/util/test_thread_pool.cpp.o"
  "CMakeFiles/test_util.dir/tests/util/test_thread_pool.cpp.o.d"
  "tests/test_util"
  "tests/test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
