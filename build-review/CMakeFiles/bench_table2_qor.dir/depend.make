# Empty dependencies file for bench_table2_qor.
# This may be replaced when dependencies are built.
