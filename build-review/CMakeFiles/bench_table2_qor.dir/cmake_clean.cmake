file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_qor.dir/bench/table2_qor.cpp.o"
  "CMakeFiles/bench_table2_qor.dir/bench/table2_qor.cpp.o.d"
  "bench/table2_qor"
  "bench/table2_qor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_qor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
