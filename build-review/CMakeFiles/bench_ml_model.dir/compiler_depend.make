# Empty compiler generated dependencies file for bench_ml_model.
# This may be replaced when dependencies are built.
