file(REMOVE_RECURSE
  "CMakeFiles/bench_ml_model.dir/bench/ml_model.cpp.o"
  "CMakeFiles/bench_ml_model.dir/bench/ml_model.cpp.o.d"
  "bench/ml_model"
  "bench/ml_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ml_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
