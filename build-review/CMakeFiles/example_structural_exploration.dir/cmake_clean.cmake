file(REMOVE_RECURSE
  "CMakeFiles/example_structural_exploration.dir/examples/structural_exploration.cpp.o"
  "CMakeFiles/example_structural_exploration.dir/examples/structural_exploration.cpp.o.d"
  "examples/structural_exploration"
  "examples/structural_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_structural_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
