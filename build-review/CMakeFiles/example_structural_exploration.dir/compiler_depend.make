# Empty compiler generated dependencies file for example_structural_exploration.
# This may be replaced when dependencies are built.
