file(REMOVE_RECURSE
  "CMakeFiles/test_sat.dir/tests/sat/test_sat.cpp.o"
  "CMakeFiles/test_sat.dir/tests/sat/test_sat.cpp.o.d"
  "CMakeFiles/test_sat.dir/tests/sat/test_sat_fuzz.cpp.o"
  "CMakeFiles/test_sat.dir/tests/sat/test_sat_fuzz.cpp.o.d"
  "tests/test_sat"
  "tests/test_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
