# Empty compiler generated dependencies file for example_custom_rules_and_cells.
# This may be replaced when dependencies are built.
