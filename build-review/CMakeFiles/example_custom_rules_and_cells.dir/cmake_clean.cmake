file(REMOVE_RECURSE
  "CMakeFiles/example_custom_rules_and_cells.dir/examples/custom_rules_and_cells.cpp.o"
  "CMakeFiles/example_custom_rules_and_cells.dir/examples/custom_rules_and_cells.cpp.o.d"
  "examples/custom_rules_and_cells"
  "examples/custom_rules_and_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_rules_and_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
