file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/tests/ml/test_ml.cpp.o"
  "CMakeFiles/test_ml.dir/tests/ml/test_ml.cpp.o.d"
  "tests/test_ml"
  "tests/test_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
