file(REMOVE_RECURSE
  "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph.cpp.o.d"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph_core.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph_core.cpp.o.d"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_fuzz.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_fuzz.cpp.o.d"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_pattern.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_pattern.cpp.o.d"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_rules.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_rules.cpp.o.d"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_runner.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_runner.cpp.o.d"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_serialize.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_serialize.cpp.o.d"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_sexpr.cpp.o"
  "CMakeFiles/test_egraph.dir/tests/egraph/test_sexpr.cpp.o.d"
  "tests/test_egraph"
  "tests/test_egraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_egraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
