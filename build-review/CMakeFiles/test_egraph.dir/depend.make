# Empty dependencies file for test_egraph.
# This may be replaced when dependencies are built.
