
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/egraph/test_egraph.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph.cpp.o.d"
  "/root/repo/tests/egraph/test_egraph_core.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph_core.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_egraph_core.cpp.o.d"
  "/root/repo/tests/egraph/test_fuzz.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_fuzz.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_fuzz.cpp.o.d"
  "/root/repo/tests/egraph/test_pattern.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_pattern.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_pattern.cpp.o.d"
  "/root/repo/tests/egraph/test_rules.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_rules.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_rules.cpp.o.d"
  "/root/repo/tests/egraph/test_runner.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_runner.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_runner.cpp.o.d"
  "/root/repo/tests/egraph/test_serialize.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_serialize.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_serialize.cpp.o.d"
  "/root/repo/tests/egraph/test_sexpr.cpp" "CMakeFiles/test_egraph.dir/tests/egraph/test_sexpr.cpp.o" "gcc" "CMakeFiles/test_egraph.dir/tests/egraph/test_sexpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/emorphic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
