file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mapper.dir/bench/micro_mapper.cpp.o"
  "CMakeFiles/bench_micro_mapper.dir/bench/micro_mapper.cpp.o.d"
  "bench/micro_mapper"
  "bench/micro_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
