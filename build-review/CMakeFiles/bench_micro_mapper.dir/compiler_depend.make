# Empty compiler generated dependencies file for bench_micro_mapper.
# This may be replaced when dependencies are built.
