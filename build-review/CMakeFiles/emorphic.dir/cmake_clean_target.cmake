file(REMOVE_RECURSE
  "libemorphic.a"
)
