# Empty dependencies file for emorphic.
# This may be replaced when dependencies are built.
