
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aig/aig.cpp" "CMakeFiles/emorphic.dir/src/aig/aig.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/aig/aig.cpp.o.d"
  "/root/repo/src/aig/aig_io.cpp" "CMakeFiles/emorphic.dir/src/aig/aig_io.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/aig/aig_io.cpp.o.d"
  "/root/repo/src/aig/cut.cpp" "CMakeFiles/emorphic.dir/src/aig/cut.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/aig/cut.cpp.o.d"
  "/root/repo/src/aig/signature.cpp" "CMakeFiles/emorphic.dir/src/aig/signature.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/aig/signature.cpp.o.d"
  "/root/repo/src/aig/sim.cpp" "CMakeFiles/emorphic.dir/src/aig/sim.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/aig/sim.cpp.o.d"
  "/root/repo/src/aig/truth.cpp" "CMakeFiles/emorphic.dir/src/aig/truth.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/aig/truth.cpp.o.d"
  "/root/repo/src/benchgen/arith.cpp" "CMakeFiles/emorphic.dir/src/benchgen/arith.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/benchgen/arith.cpp.o.d"
  "/root/repo/src/benchgen/control.cpp" "CMakeFiles/emorphic.dir/src/benchgen/control.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/benchgen/control.cpp.o.d"
  "/root/repo/src/benchgen/epfl.cpp" "CMakeFiles/emorphic.dir/src/benchgen/epfl.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/benchgen/epfl.cpp.o.d"
  "/root/repo/src/cec/cec.cpp" "CMakeFiles/emorphic.dir/src/cec/cec.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/cec/cec.cpp.o.d"
  "/root/repo/src/core/emorphic.cpp" "CMakeFiles/emorphic.dir/src/core/emorphic.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/core/emorphic.cpp.o.d"
  "/root/repo/src/egraph/egraph.cpp" "CMakeFiles/emorphic.dir/src/egraph/egraph.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/egraph/egraph.cpp.o.d"
  "/root/repo/src/egraph/pattern.cpp" "CMakeFiles/emorphic.dir/src/egraph/pattern.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/egraph/pattern.cpp.o.d"
  "/root/repo/src/egraph/rules.cpp" "CMakeFiles/emorphic.dir/src/egraph/rules.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/egraph/rules.cpp.o.d"
  "/root/repo/src/egraph/runner.cpp" "CMakeFiles/emorphic.dir/src/egraph/runner.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/egraph/runner.cpp.o.d"
  "/root/repo/src/egraph/serialize.cpp" "CMakeFiles/emorphic.dir/src/egraph/serialize.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/egraph/serialize.cpp.o.d"
  "/root/repo/src/egraph/sexpr.cpp" "CMakeFiles/emorphic.dir/src/egraph/sexpr.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/egraph/sexpr.cpp.o.d"
  "/root/repo/src/extract/exact.cpp" "CMakeFiles/emorphic.dir/src/extract/exact.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/extract/exact.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "CMakeFiles/emorphic.dir/src/extract/extractor.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/extract/extractor.cpp.o.d"
  "/root/repo/src/extract/sa_extractor.cpp" "CMakeFiles/emorphic.dir/src/extract/sa_extractor.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/extract/sa_extractor.cpp.o.d"
  "/root/repo/src/flow/batch.cpp" "CMakeFiles/emorphic.dir/src/flow/batch.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/flow/batch.cpp.o.d"
  "/root/repo/src/flow/conversion.cpp" "CMakeFiles/emorphic.dir/src/flow/conversion.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/flow/conversion.cpp.o.d"
  "/root/repo/src/flow/flows.cpp" "CMakeFiles/emorphic.dir/src/flow/flows.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/flow/flows.cpp.o.d"
  "/root/repo/src/flow/pipeline.cpp" "CMakeFiles/emorphic.dir/src/flow/pipeline.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/flow/pipeline.cpp.o.d"
  "/root/repo/src/mapper/cell_library.cpp" "CMakeFiles/emorphic.dir/src/mapper/cell_library.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/mapper/cell_library.cpp.o.d"
  "/root/repo/src/mapper/genlib.cpp" "CMakeFiles/emorphic.dir/src/mapper/genlib.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/mapper/genlib.cpp.o.d"
  "/root/repo/src/mapper/matcher.cpp" "CMakeFiles/emorphic.dir/src/mapper/matcher.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/mapper/matcher.cpp.o.d"
  "/root/repo/src/mapper/netlist.cpp" "CMakeFiles/emorphic.dir/src/mapper/netlist.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/mapper/netlist.cpp.o.d"
  "/root/repo/src/mapper/tech_mapper.cpp" "CMakeFiles/emorphic.dir/src/mapper/tech_mapper.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/mapper/tech_mapper.cpp.o.d"
  "/root/repo/src/ml/cost_model.cpp" "CMakeFiles/emorphic.dir/src/ml/cost_model.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/ml/cost_model.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "CMakeFiles/emorphic.dir/src/ml/dataset.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "CMakeFiles/emorphic.dir/src/ml/features.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/ml/features.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "CMakeFiles/emorphic.dir/src/ml/mlp.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/ml/mlp.cpp.o.d"
  "/root/repo/src/opt/balance.cpp" "CMakeFiles/emorphic.dir/src/opt/balance.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/opt/balance.cpp.o.d"
  "/root/repo/src/opt/refactor.cpp" "CMakeFiles/emorphic.dir/src/opt/refactor.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/opt/refactor.cpp.o.d"
  "/root/repo/src/opt/resyn.cpp" "CMakeFiles/emorphic.dir/src/opt/resyn.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/opt/resyn.cpp.o.d"
  "/root/repo/src/opt/sop.cpp" "CMakeFiles/emorphic.dir/src/opt/sop.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/opt/sop.cpp.o.d"
  "/root/repo/src/opt/sop_balance.cpp" "CMakeFiles/emorphic.dir/src/opt/sop_balance.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/opt/sop_balance.cpp.o.d"
  "/root/repo/src/sat/cnf.cpp" "CMakeFiles/emorphic.dir/src/sat/cnf.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/sat/cnf.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "CMakeFiles/emorphic.dir/src/sat/solver.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/sat/solver.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/emorphic.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/logger.cpp" "CMakeFiles/emorphic.dir/src/util/logger.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/util/logger.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/emorphic.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/emorphic.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/emorphic.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
