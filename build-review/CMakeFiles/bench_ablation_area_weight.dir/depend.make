# Empty dependencies file for bench_ablation_area_weight.
# This may be replaced when dependencies are built.
