file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_area_weight.dir/bench/ablation_area_weight.cpp.o"
  "CMakeFiles/bench_ablation_area_weight.dir/bench/ablation_area_weight.cpp.o.d"
  "bench/ablation_area_weight"
  "bench/ablation_area_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_area_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
