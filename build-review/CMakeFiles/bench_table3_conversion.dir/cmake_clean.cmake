file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_conversion.dir/bench/table3_conversion.cpp.o"
  "CMakeFiles/bench_table3_conversion.dir/bench/table3_conversion.cpp.o.d"
  "bench/table3_conversion"
  "bench/table3_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
