# Empty dependencies file for bench_table3_conversion.
# This may be replaced when dependencies are built.
