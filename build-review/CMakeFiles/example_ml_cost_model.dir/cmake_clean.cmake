file(REMOVE_RECURSE
  "CMakeFiles/example_ml_cost_model.dir/examples/ml_cost_model.cpp.o"
  "CMakeFiles/example_ml_cost_model.dir/examples/ml_cost_model.cpp.o.d"
  "examples/ml_cost_model"
  "examples/ml_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ml_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
