# Empty dependencies file for example_ml_cost_model.
# This may be replaced when dependencies are built.
