file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sa_trace.dir/bench/fig4_sa_trace.cpp.o"
  "CMakeFiles/bench_fig4_sa_trace.dir/bench/fig4_sa_trace.cpp.o.d"
  "bench/fig4_sa_trace"
  "bench/fig4_sa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
