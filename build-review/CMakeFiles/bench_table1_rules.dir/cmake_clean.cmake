file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rules.dir/bench/table1_rules.cpp.o"
  "CMakeFiles/bench_table1_rules.dir/bench/table1_rules.cpp.o.d"
  "bench/table1_rules"
  "bench/table1_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
