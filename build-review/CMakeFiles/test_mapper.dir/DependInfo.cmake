
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mapper/test_genlib.cpp" "CMakeFiles/test_mapper.dir/tests/mapper/test_genlib.cpp.o" "gcc" "CMakeFiles/test_mapper.dir/tests/mapper/test_genlib.cpp.o.d"
  "/root/repo/tests/mapper/test_mapper.cpp" "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper.cpp.o" "gcc" "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper.cpp.o.d"
  "/root/repo/tests/mapper/test_mapper_props.cpp" "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper_props.cpp.o" "gcc" "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper_props.cpp.o.d"
  "/root/repo/tests/mapper/test_matcher.cpp" "CMakeFiles/test_mapper.dir/tests/mapper/test_matcher.cpp.o" "gcc" "CMakeFiles/test_mapper.dir/tests/mapper/test_matcher.cpp.o.d"
  "/root/repo/tests/mapper/test_netlist.cpp" "CMakeFiles/test_mapper.dir/tests/mapper/test_netlist.cpp.o" "gcc" "CMakeFiles/test_mapper.dir/tests/mapper/test_netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/emorphic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
