file(REMOVE_RECURSE
  "CMakeFiles/test_mapper.dir/tests/mapper/test_genlib.cpp.o"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_genlib.cpp.o.d"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper.cpp.o"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper.cpp.o.d"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper_props.cpp.o"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_mapper_props.cpp.o.d"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_matcher.cpp.o"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_matcher.cpp.o.d"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_netlist.cpp.o"
  "CMakeFiles/test_mapper.dir/tests/mapper/test_netlist.cpp.o.d"
  "tests/test_mapper"
  "tests/test_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
