# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(aig "/root/repo/build-review/tests/test_aig")
set_tests_properties(aig PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(benchgen "/root/repo/build-review/tests/test_benchgen")
set_tests_properties(benchgen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(cec "/root/repo/build-review/tests/test_cec")
set_tests_properties(cec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(egraph "/root/repo/build-review/tests/test_egraph")
set_tests_properties(egraph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(extract "/root/repo/build-review/tests/test_extract")
set_tests_properties(extract PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(flow "/root/repo/build-review/tests/test_flow")
set_tests_properties(flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration "/root/repo/build-review/tests/test_integration")
set_tests_properties(integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(mapper "/root/repo/build-review/tests/test_mapper")
set_tests_properties(mapper PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(ml "/root/repo/build-review/tests/test_ml")
set_tests_properties(ml PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(opt "/root/repo/build-review/tests/test_opt")
set_tests_properties(opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sat "/root/repo/build-review/tests/test_sat")
set_tests_properties(sat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
add_test(util "/root/repo/build-review/tests/test_util")
set_tests_properties(util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;44;add_test;/root/repo/CMakeLists.txt;0;")
