// Reproduces Fig. 4 (and serves as the SA ablation): a full trace of the
// simulated-annealing extraction loop — temperature schedule, candidate
// costs, accept/reject decisions — plus a comparison of extraction
// strategies (greedy depth / greedy size / random / SA) and a thread sweep.

#include <cstdio>

#include "bench_util.hpp"
#include "egraph/rules.hpp"

using namespace emorphic;
using namespace emorphic::bench;

int main() {
  std::printf("=== Fig. 4: simulated-annealing extraction trace ===\n\n");
  Aig circuit = make_epfl("sin");
  FlowParams params = paper_flow_params();

  // Pre-optimize and build the rewritten e-graph once.
  Aig cur = dch_substitute(sop_balance(strash(circuit)));
  CircuitEGraph ce = aig_to_egraph(cur);
  run_rewriting(ce.egraph, make_logic_rules(), params.rewrite);
  std::printf("e-graph: %zu classes, %zu e-nodes\n\n", ce.egraph.num_classes(),
              ce.egraph.num_enodes());

  MapQorEvaluator evaluator(*params.library);

  // --- Extraction strategy comparison --------------------------------------
  std::printf("%-22s %10s %10s\n", "extraction", "delay(ps)", "area(um2)");
  print_rule(46);
  {
    Extraction g = greedy_extract(ce.egraph, CostModel{CostKind::kDepth});
    Qor q = evaluator.evaluate(egraph_to_aig(ce, g));
    std::printf("%-22s %10.1f %10.2f\n", "greedy (depth cost)", q.delay, q.area);
  }
  {
    Extraction g = greedy_extract(ce.egraph, CostModel{CostKind::kSize});
    Qor q = evaluator.evaluate(egraph_to_aig(ce, g));
    std::printf("%-22s %10.1f %10.2f\n", "greedy (sum cost)", q.delay, q.area);
  }
  {
    Rng rng(2024);
    double best_delay = 1e18, best_area = 0.0;
    for (int i = 0; i < 8; ++i) {
      Extraction r = random_extract(ce.egraph, rng);
      Qor q = evaluator.evaluate(egraph_to_aig(ce, r));
      if (q.delay < best_delay) {
        best_delay = q.delay;
        best_area = q.area;
      }
    }
    std::printf("%-22s %10.1f %10.2f\n", "random (best of 8)", best_delay,
                best_area);
  }
  SaParams sa = params.sa;
  sa.num_threads = 4;
  SaResult result = sa_extract(ce.egraph, ce.roots, ce.pi_names, evaluator, sa);
  std::printf("%-22s %10.1f %10.2f\n", "simulated annealing",
              result.best_qor.delay, result.best_qor.area);

  // --- The Fig. 4 trace -----------------------------------------------------
  std::printf("\nSA trace (thread 0): iteration, move, temperature, candidate "
              "cost, decision\n");
  print_rule(70);
  for (const SaTracePoint& pt : result.trace) {
    if (pt.thread != 0) continue;
    std::printf("  iter %u move %u  T=%-12.4g cand=%-10.1f cur=%-10.1f %s\n",
                pt.iteration, pt.move, pt.temperature, pt.candidate_cost,
                pt.current_cost, pt.accepted ? "ACCEPT" : "reject");
  }
  std::printf("\ncooling schedule: T1=2000; T_n = T_{n-1}*|dC|/(n*10000) for "
              "n=2,3; T_n = T_{n-1}*|dC|/n for n=4 (Sec. IV-A)\n");

  // --- Thread-count ablation ------------------------------------------------
  std::printf("\nThread sweep (multithreaded parallel SA, Sec. III-B.3):\n");
  std::printf("%-10s %10s %10s %10s\n", "threads", "delay(ps)", "area(um2)",
              "time(s)");
  print_rule(44);
  for (unsigned threads : {1u, 2u, 4u, 6u}) {
    SaParams p = params.sa;
    p.num_threads = threads;
    SaResult r = sa_extract(ce.egraph, ce.roots, ce.pi_names, evaluator, p);
    std::printf("%-10u %10.1f %10.2f %10.2f\n", threads, r.best_qor.delay,
                r.best_qor.area, r.seconds);
  }
  std::printf("\nShape target: SA <= best greedy; more chains never hurt "
              "the best solution.\n");
  return 0;
}
