// Micro-benchmarks for the e-graph kernels: add/hashcons, merge+rebuild,
// e-matching, greedy extraction (pruned vs. full), direct conversion, and the
// mapper — the per-operation costs behind Tables II/III.
//
// Also the before/after harness for the e-graph core overhaul: the
// saturation-rounds comparison pits the preserved seed implementation
// (bench/legacy_egraph.hpp) against the current core and writes the numbers
// to BENCH_egraph.json so the perf trajectory is machine-readable across PRs.
// Along the way it cross-checks that indexed, full-scan, and parallel
// matching all reach bit-identical saturation states.
//
// Builds with google-benchmark when available, and against the bundled
// minibench fallback otherwise (see EMORPHIC_USE_GBENCH in CMakeLists.txt),
// so this harness always exists.

#ifdef EMORPHIC_HAVE_GBENCH
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
namespace benchmark = minibench;
#endif

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include "core/emorphic.hpp"
#include "legacy_egraph.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace emorphic;

Aig make_random_aig(unsigned pis, unsigned ands, std::uint64_t seed) {
  Rng rng(seed);
  Aig aig;
  std::vector<Lit> pool;
  for (unsigned i = 0; i < pis; ++i) pool.push_back(make_lit(aig.add_pi()));
  for (unsigned k = 0; k < ands; ++k) {
    Lit a = pool[rng.next_below(pool.size())];
    Lit b = pool[rng.next_below(pool.size())];
    if (rng.chance(0.5)) a = lit_not(a);
    if (rng.chance(0.5)) b = lit_not(b);
    pool.push_back(aig.make_and(a, b));
  }
  for (unsigned i = 0; i < 8; ++i) aig.add_po(pool[pool.size() - 1 - i]);
  return aig;
}

void BM_EGraphAdd(benchmark::State& state) {
  for (auto _ : state) {
    EGraph eg;
    EClassId a = eg.add_var(0);
    EClassId b = eg.add_var(1);
    for (int i = 0; i < state.range(0); ++i) {
      a = eg.add_and(a, b);
    }
    benchmark::DoNotOptimize(eg.num_enodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EGraphAdd)->Arg(1000)->Arg(10000);

void BM_MergeRebuild(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EGraph eg;
    std::vector<EClassId> vars;
    for (int i = 0; i < state.range(0); ++i) {
      vars.push_back(eg.add_var(static_cast<std::uint32_t>(i)));
    }
    EClassId probe = eg.add_var(999999);
    std::vector<EClassId> nots;
    for (EClassId v : vars) nots.push_back(eg.add_and(v, probe));
    state.ResumeTiming();
    for (std::size_t i = 1; i < vars.size(); ++i) eg.merge(vars[0], vars[i]);
    eg.rebuild();
    benchmark::DoNotOptimize(eg.num_classes());
  }
}
BENCHMARK(BM_MergeRebuild)->Arg(256)->Arg(2048);

void BM_DirectConversion(benchmark::State& state) {
  Aig aig = make_random_aig(32, static_cast<unsigned>(state.range(0)), 5);
  for (auto _ : state) {
    CircuitEGraph ce = aig_to_egraph(aig);
    benchmark::DoNotOptimize(ce.egraph.num_enodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DirectConversion)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_EMatching(benchmark::State& state) {
  Aig aig = make_random_aig(16, 400, 7);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerParams limits;
  limits.max_iterations = 2;
  limits.max_enodes = 20000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  auto rules = make_logic_rules();
  const Pattern& pattern = rules[4].lhs;  // distributivity
  for (auto _ : state) {
    std::vector<Subst> matches;
    for (EClassId id : ce.egraph.class_ids()) {
      match_in_class(ce.egraph, pattern, id, matches, 100000);
    }
    benchmark::DoNotOptimize(matches.size());
  }
}
BENCHMARK(BM_EMatching);

void BM_GreedyExtractPruned(benchmark::State& state) {
  Aig aig = make_random_aig(16, 600, 9);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerParams limits;
  limits.max_iterations = 3;
  limits.max_enodes = 30000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  CostModel cost{CostKind::kDepth};
  bool prune = state.range(0) != 0;
  for (auto _ : state) {
    Extraction sol = greedy_extract(ce.egraph, cost, nullptr, prune);
    benchmark::DoNotOptimize(sol.size());
  }
}
BENCHMARK(BM_GreedyExtractPruned)->Arg(0)->Arg(1);

void BM_TechMap(benchmark::State& state) {
  Aig aig = make_random_aig(24, static_cast<unsigned>(state.range(0)), 11);
  const CellLibrary& lib = CellLibrary::asap7_like();
  for (auto _ : state) {
    MappedQor qor = map_qor(aig, lib);
    benchmark::DoNotOptimize(qor.delay);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TechMap)->Arg(500)->Arg(4000);

void BM_NpnCanon(benchmark::State& state) {
  Rng rng(13);
  std::vector<Tt> tts;
  for (int i = 0; i < 256; ++i) tts.push_back(rng.next() & tt_mask(4));
  for (auto _ : state) {
    Tt acc = 0;
    for (Tt t : tts) acc ^= npn_canon(t);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_NpnCanon);

// --- saturation-rounds before/after harness ---------------------------------

struct SaturationWorkload {
  unsigned pis = 16;
  unsigned ands = 240;
  std::uint64_t seed = 21;
  std::size_t iterations = 4;
  std::size_t max_enodes = 40000;
  std::size_t max_matches_per_rule = 4000;
  int repeats = 3;  // best-of-N wall clock per configuration
};

struct RunOutcome {
  double seconds = 0.0;  // best of repeats
  std::size_t matches = 0;
  std::size_t enodes = 0;
  std::size_t classes = 0;
  std::vector<std::size_t> rule_matches;
};

RunOutcome run_new(const Aig& aig, const std::vector<Rewrite>& rules,
                   const SaturationWorkload& wl, bool use_index,
                   unsigned threads) {
  RunnerParams params;
  params.max_iterations = wl.iterations;
  params.max_enodes = wl.max_enodes;
  params.max_matches_per_rule = wl.max_matches_per_rule;
  params.use_rule_index = use_index;
  params.match_threads = threads;
  RunOutcome out;
  for (int rep = 0; rep < wl.repeats; ++rep) {
    CircuitEGraph ce = aig_to_egraph(aig);
    Timer timer;
    RunnerReport report = run_rewriting(ce.egraph, rules, params);
    double seconds = timer.seconds();
    if (rep == 0 || seconds < out.seconds) out.seconds = seconds;
    out.matches = 0;
    for (const IterationStats& it : report.iterations) {
      out.matches += it.matches;
    }
    out.enodes = ce.egraph.num_enodes();
    out.classes = ce.egraph.num_classes();
    out.rule_matches = report.rule_matches;
  }
  return out;
}

RunOutcome run_legacy(const Aig& aig, const std::vector<Rewrite>& rules,
                      const SaturationWorkload& wl) {
  RunOutcome out;
  for (int rep = 0; rep < wl.repeats; ++rep) {
    legacy::EGraph eg = legacy::egraph_from_aig(aig);
    Timer timer;
    legacy::RunStats stats = legacy::run_rewriting(
        eg, rules, wl.iterations, wl.max_enodes, wl.max_matches_per_rule);
    double seconds = timer.seconds();
    if (rep == 0 || seconds < out.seconds) out.seconds = seconds;
    out.matches = stats.matches;
    out.enodes = stats.enodes;
    out.classes = stats.classes;
  }
  return out;
}

bool same_saturation_state(const RunOutcome& a, const RunOutcome& b) {
  return a.matches == b.matches && a.enodes == b.enodes &&
         a.classes == b.classes && a.rule_matches == b.rule_matches;
}

/// Uncapped cross-check against the seed implementation. With no match or
/// node cap in play, the final congruence closure is independent of match
/// order, so every configuration — including the seed core, whose
/// unordered_map iteration order scrambles its match order — must land on
/// the identical e-graph state. (The capped perf workload is *not*
/// comparable that way: truncating to a 4000-match prefix picks different
/// matches per implementation.)
bool cross_check_with_legacy() {
  bool ok = true;
  struct Shape {
    unsigned pis;
    unsigned ands;
    std::size_t iterations;
  };
  for (Shape shape : {Shape{8, 30, 3}, Shape{10, 40, 2}}) {
    SaturationWorkload wl;
    wl.pis = shape.pis;
    wl.ands = shape.ands;
    wl.seed = 7;
    wl.iterations = shape.iterations;
    wl.max_enodes = 100000000;
    wl.max_matches_per_rule = 100000000;
    wl.repeats = 1;
    Aig aig = make_random_aig(wl.pis, wl.ands, wl.seed);
    std::vector<Rewrite> rules = make_logic_rules();
    RunOutcome legacy_run = run_legacy(aig, rules, wl);
    RunOutcome fullscan = run_new(aig, rules, wl, /*use_index=*/false, 1);
    RunOutcome indexed = run_new(aig, rules, wl, /*use_index=*/true, 1);
    RunOutcome parallel = run_new(aig, rules, wl, /*use_index=*/true, 4);
    bool same = legacy_run.matches == indexed.matches &&
                legacy_run.enodes == indexed.enodes &&
                legacy_run.classes == indexed.classes &&
                same_saturation_state(fullscan, indexed) &&
                same_saturation_state(indexed, parallel);
    std::printf("cross-check %ux%u/%zu iters (uncapped): %zu classes, "
                "%zu e-nodes — legacy/fullscan/indexed/parallel agree: %s\n",
                wl.pis, wl.ands, wl.iterations, indexed.classes,
                indexed.enodes, same ? "yes" : "NO");
    ok = ok && same;
  }
  return ok;
}

/// Returns false when a cross-check fails (configurations disagree on the
/// saturation state); the speedup itself is recorded, not asserted.
bool run_saturation_comparison(const char* json_path) {
  SaturationWorkload wl;
  Aig aig = make_random_aig(wl.pis, wl.ands, wl.seed);
  std::vector<Rewrite> rules = make_logic_rules();
  unsigned threads =
      std::min(4u, std::max(1u, std::thread::hardware_concurrency()));

  std::printf("\n-- saturation-rounds: seed core vs. overhauled core --\n");
  RunOutcome legacy_run = run_legacy(aig, rules, wl);
  RunOutcome fullscan = run_new(aig, rules, wl, /*use_index=*/false, 1);
  RunOutcome indexed = run_new(aig, rules, wl, /*use_index=*/true, 1);
  RunOutcome parallel = run_new(aig, rules, wl, /*use_index=*/true, threads);

  bool index_ok = same_saturation_state(fullscan, indexed);
  bool parallel_ok = same_saturation_state(indexed, parallel);
  bool legacy_ok = cross_check_with_legacy();

  double serial_speedup = legacy_run.seconds / indexed.seconds;
  double parallel_speedup = legacy_run.seconds / parallel.seconds;

  std::printf("legacy (seed hashcons/runner):   %8.3f s\n",
              legacy_run.seconds);
  std::printf("new, full-scan serial:           %8.3f s\n", fullscan.seconds);
  std::printf("new, indexed serial:             %8.3f s  (%.2fx)\n",
              indexed.seconds, serial_speedup);
  std::printf("new, indexed, %u match threads:   %8.3f s  (%.2fx)\n", threads,
              parallel.seconds, parallel_speedup);
  std::printf("indexed == full-scan: %s; threads == serial: %s\n",
              index_ok ? "yes" : "NO", parallel_ok ? "yes" : "NO");
  std::printf("final e-graph: %zu classes, %zu e-nodes, %zu matches\n",
              indexed.classes, indexed.enodes, indexed.matches);

  Json workload = Json::object();
  workload["pis"] = static_cast<std::uint64_t>(wl.pis);
  workload["ands"] = static_cast<std::uint64_t>(wl.ands);
  workload["seed"] = static_cast<std::uint64_t>(wl.seed);
  workload["iterations"] = static_cast<std::uint64_t>(wl.iterations);
  workload["max_enodes"] = static_cast<std::uint64_t>(wl.max_enodes);
  workload["max_matches_per_rule"] =
      static_cast<std::uint64_t>(wl.max_matches_per_rule);
  workload["rules"] = static_cast<std::uint64_t>(rules.size());
  workload["repeats"] = static_cast<std::uint64_t>(wl.repeats);

  Json doc = Json::object();
  doc["benchmark"] = "egraph-saturation-rounds";
  doc["workload"] = std::move(workload);
  doc["legacy_seconds"] = legacy_run.seconds;
  doc["new_fullscan_seconds"] = fullscan.seconds;
  doc["new_indexed_seconds"] = indexed.seconds;
  doc["new_parallel_seconds"] = parallel.seconds;
  doc["match_threads"] = static_cast<std::uint64_t>(threads);
  doc["serial_speedup"] = serial_speedup;
  doc["speedup"] = parallel_speedup;
  doc["indexed_equals_fullscan"] = index_ok;
  doc["parallel_equals_serial"] = parallel_ok;
  doc["uncapped_state_equals_legacy"] = legacy_ok;
  doc["final_classes"] = static_cast<std::uint64_t>(indexed.classes);
  doc["final_enodes"] = static_cast<std::uint64_t>(indexed.enodes);
  doc["total_matches"] = static_cast<std::uint64_t>(indexed.matches);

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", json_path);

  return index_ok && parallel_ok && legacy_ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const char* json_path =
      argc > 1 ? argv[1] : "BENCH_egraph.json";
  return run_saturation_comparison(json_path) ? 0 : 1;
}
