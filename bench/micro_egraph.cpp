// google-benchmark micro-benchmarks for the e-graph kernels: add/hashcons,
// merge+rebuild, e-matching, greedy extraction (pruned vs. full), direct
// conversion, and the mapper — the per-operation costs behind Tables II/III.

#include <benchmark/benchmark.h>

#include "core/emorphic.hpp"
#include "util/rng.hpp"

namespace {

using namespace emorphic;

Aig make_random_aig(unsigned pis, unsigned ands, std::uint64_t seed) {
  Rng rng(seed);
  Aig aig;
  std::vector<Lit> pool;
  for (unsigned i = 0; i < pis; ++i) pool.push_back(make_lit(aig.add_pi()));
  for (unsigned k = 0; k < ands; ++k) {
    Lit a = pool[rng.next_below(pool.size())];
    Lit b = pool[rng.next_below(pool.size())];
    if (rng.chance(0.5)) a = lit_not(a);
    if (rng.chance(0.5)) b = lit_not(b);
    pool.push_back(aig.make_and(a, b));
  }
  for (unsigned i = 0; i < 8; ++i) aig.add_po(pool[pool.size() - 1 - i]);
  return aig;
}

void BM_EGraphAdd(benchmark::State& state) {
  for (auto _ : state) {
    EGraph eg;
    EClassId a = eg.add_var(0);
    EClassId b = eg.add_var(1);
    for (int i = 0; i < state.range(0); ++i) {
      a = eg.add_and(a, b);
    }
    benchmark::DoNotOptimize(eg.num_enodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EGraphAdd)->Arg(1000)->Arg(10000);

void BM_MergeRebuild(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    EGraph eg;
    std::vector<EClassId> vars;
    for (int i = 0; i < state.range(0); ++i) {
      vars.push_back(eg.add_var(static_cast<std::uint32_t>(i)));
    }
    EClassId probe = eg.add_var(999999);
    std::vector<EClassId> nots;
    for (EClassId v : vars) nots.push_back(eg.add_and(v, probe));
    state.ResumeTiming();
    for (std::size_t i = 1; i < vars.size(); ++i) eg.merge(vars[0], vars[i]);
    eg.rebuild();
    benchmark::DoNotOptimize(eg.num_classes());
  }
}
BENCHMARK(BM_MergeRebuild)->Arg(256)->Arg(2048);

void BM_DirectConversion(benchmark::State& state) {
  Aig aig = make_random_aig(32, static_cast<unsigned>(state.range(0)), 5);
  for (auto _ : state) {
    CircuitEGraph ce = aig_to_egraph(aig);
    benchmark::DoNotOptimize(ce.egraph.num_enodes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DirectConversion)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_EMatching(benchmark::State& state) {
  Aig aig = make_random_aig(16, 400, 7);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 2;
  limits.max_enodes = 20000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  auto rules = make_logic_rules();
  const Pattern& pattern = rules[4].lhs;  // distributivity
  for (auto _ : state) {
    std::vector<Subst> matches;
    for (EClassId id : ce.egraph.class_ids()) {
      match_in_class(ce.egraph, pattern, id, matches, 100000);
    }
    benchmark::DoNotOptimize(matches.size());
  }
}
BENCHMARK(BM_EMatching);

void BM_GreedyExtractPruned(benchmark::State& state) {
  Aig aig = make_random_aig(16, 600, 9);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerLimits limits;
  limits.max_iterations = 3;
  limits.max_enodes = 30000;
  run_rewriting(ce.egraph, make_logic_rules(), limits);
  CostModel cost{CostKind::kDepth};
  bool prune = state.range(0) != 0;
  for (auto _ : state) {
    Extraction sol = greedy_extract(ce.egraph, cost, nullptr, prune);
    benchmark::DoNotOptimize(sol.size());
  }
}
BENCHMARK(BM_GreedyExtractPruned)->Arg(0)->Arg(1);

void BM_TechMap(benchmark::State& state) {
  Aig aig = make_random_aig(24, static_cast<unsigned>(state.range(0)), 11);
  const CellLibrary& lib = CellLibrary::asap7_like();
  for (auto _ : state) {
    MappedQor qor = map_qor(aig, lib);
    benchmark::DoNotOptimize(qor.delay);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TechMap)->Arg(500)->Arg(4000);

void BM_NpnCanon(benchmark::State& state) {
  Rng rng(13);
  std::vector<Tt> tts;
  for (int i = 0; i < 256; ++i) tts.push_back(rng.next() & tt_mask(4));
  for (auto _ : state) {
    Tt acc = 0;
    for (Tt t : tts) acc ^= npn_canon(t);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_NpnCanon);

}  // namespace

BENCHMARK_MAIN();
