// Reproduces Table I (and the rewrite-iteration ablation): the rule set by
// class, each rule's soundness re-verified by truth table, and per-class
// match/application counts on a real rewritten benchmark e-graph. Also
// sweeps the iteration count to show why "few iterations" (5 in the paper)
// already multiply the equivalence classes (Sec. I, insight 1).

#include <cstdio>

#include "bench_util.hpp"
#include "egraph/rules.hpp"

using namespace emorphic;
using namespace emorphic::bench;

namespace {

Tt eval_side(const Pattern& pattern, unsigned n) {
  std::vector<Tt> value(pattern.nodes().size(), 0);
  for (std::size_t i = 0; i < pattern.nodes().size(); ++i) {
    const Pattern::Node& node = pattern.nodes()[i];
    if (node.is_var) {
      value[i] = tt_var(node.var, n);
    } else {
      switch (node.op) {
        case Op::kConst0: value[i] = 0; break;
        case Op::kConst1: value[i] = tt_mask(n); break;
        case Op::kNot: value[i] = tt_not(value[node.children[0]], n); break;
        case Op::kAnd: value[i] = value[node.children[0]] & value[node.children[1]]; break;
        case Op::kOr: value[i] = value[node.children[0]] | value[node.children[1]]; break;
        case Op::kXor: value[i] = value[node.children[0]] ^ value[node.children[1]]; break;
        default: break;
      }
    }
  }
  return value[pattern.root()] & tt_mask(n);
}

}  // namespace

int main() {
  std::printf("=== Table I: rewriting rules — soundness and activity ===\n\n");

  // Build a representative rewritten e-graph to count matches on.
  Aig circuit = make_epfl("multiplier");
  CircuitEGraph ce = aig_to_egraph(dch_substitute(strash(circuit)));
  RunnerLimits limits;
  limits.max_iterations = 5;
  limits.max_enodes = 30000;
  limits.time_limit_s = 10.0;
  limits.max_matches_per_rule = 3000;
  RunnerReport report = run_rewriting(ce.egraph, make_logic_rules(), limits);

  const auto rules = make_logic_rules();
  auto classes = make_rule_classes();
  std::printf("%-16s %-18s %-9s %10s %10s\n", "Class", "rule", "sound?",
              "matches", "applied");
  print_rule(70);
  std::size_t rule_index = 0;
  for (const auto& cls : classes) {
    for (const auto& rw : cls.rules) {
      unsigned n = std::max<unsigned>(1, rw.var_names.size());
      bool sound = eval_side(rw.lhs, n) == eval_side(rw.rhs, n);
      std::printf("%-16s %-18s %-9s %10zu %10zu\n", cls.class_name,
                  rw.name.c_str(), sound ? "yes" : "NO!",
                  report.rule_matches[rule_index],
                  report.rule_applications[rule_index]);
      ++rule_index;
    }
  }
  std::printf("\nNote: commutativity (Table I rows 1-2) is absorbed "
              "structurally — the e-graph stores commutative operators "
              "child-sorted and the matcher tries both orders.\n");

  // --- iteration-count ablation --------------------------------------------
  std::printf("\nRewrite-iteration sweep (multiplier):\n");
  std::printf("%-6s %12s %12s %12s %10s\n", "iters", "e-nodes", "classes",
              "choices/cls", "time(s)");
  print_rule(58);
  for (unsigned iters : {1u, 2u, 3u, 5u, 8u}) {
    CircuitEGraph fresh = aig_to_egraph(dch_substitute(strash(circuit)));
    RunnerLimits lim = limits;
    lim.max_iterations = iters;
    RunnerReport rep = run_rewriting(fresh.egraph, make_logic_rules(), lim);
    std::size_t enodes = fresh.egraph.num_enodes();
    std::size_t ncls = fresh.egraph.num_classes();
    std::printf("%-6u %12zu %12zu %12.2f %10.2f (%s)\n", iters, enodes, ncls,
                static_cast<double>(enodes) / static_cast<double>(ncls),
                rep.total_seconds, stop_reason_name(rep.stop_reason));
  }
  std::printf("\nShape target: a handful of iterations already yields many "
              "equivalent choices per class (Sec. I, insight 1); growth is "
              "capped by the node limit, as on the paper's server by memory.\n");
  return 0;
}
