#pragma once
// Zero-dependency fallback timer harness exposing the subset of the
// google-benchmark API that bench/micro_egraph.cpp uses. When google-benchmark
// is not installed, micro_egraph builds against this instead (see the
// EMORPHIC_USE_GBENCH option in CMakeLists.txt), so the perf harness — and
// the BENCH_egraph.json it emits — always exists.
//
// Supported surface: benchmark::State (range-for iteration, range(),
// PauseTiming/ResumeTiming, SetItemsProcessed, iterations),
// benchmark::DoNotOptimize, the BENCHMARK(fn)->Arg(n) registration macro,
// and Initialize/RunSpecifiedBenchmarks. Each benchmark is auto-calibrated
// to run for at least ~50 ms and reported as ns/op.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace minibench {

class State {
 public:
  State(std::int64_t arg, std::size_t iters) : arg_(arg), iters_(iters) {}

  /// The n-th benchmark argument; this shim supports a single argument.
  std::int64_t range(std::size_t /*index*/ = 0) const { return arg_; }

  std::size_t iterations() const { return iters_; }

  void PauseTiming() { accumulate(); }
  void ResumeTiming() { start_ = Clock::now(); }

  void SetItemsProcessed(std::int64_t items) { items_ = items; }
  std::int64_t items_processed() const { return items_; }

  /// Seconds of measured (non-paused) loop time.
  double seconds() const { return elapsed_; }

  struct iterator {
    State* state;
    std::size_t remaining;
    bool operator!=(const iterator& other) const {
      return remaining != other.remaining;
    }
    void operator++() {
      if (--remaining == 0) state->accumulate();
    }
    int operator*() const { return 0; }
  };

  iterator begin() {
    elapsed_ = 0.0;
    start_ = Clock::now();
    return {this, iters_};
  }
  iterator end() { return {this, 0}; }

 private:
  using Clock = std::chrono::steady_clock;

  void accumulate() {
    elapsed_ += std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t arg_ = 0;
  std::size_t iters_ = 1;
  std::int64_t items_ = 0;
  double elapsed_ = 0.0;
  Clock::time_point start_;
};

template <typename T>
inline void DoNotOptimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile const T* sink = &value;
  (void)sink;
#endif
}

struct Benchmark {
  std::string name;
  std::function<void(State&)> fn;
  std::vector<std::int64_t> args;  // empty = one run without an argument
};

inline std::vector<Benchmark>& registry() {
  static std::vector<Benchmark> benchmarks;
  return benchmarks;
}

/// Returned (as a pointer) by the BENCHMARK macro so ->Arg(n) chains keep
/// working exactly like google-benchmark's.
class Registrar {
 public:
  explicit Registrar(std::size_t index) : index_(index) {}
  Registrar* Arg(std::int64_t value) {
    registry()[index_].args.push_back(value);
    return this;
  }

 private:
  std::size_t index_;
};

inline Registrar* make_registrar(const char* name,
                                 std::function<void(State&)> fn) {
  registry().push_back({name, std::move(fn), {}});
  return new Registrar(registry().size() - 1);  // lives for the whole run
}

inline void Initialize(int* /*argc*/, char** /*argv*/) {}

/// Run one benchmark/argument pair, auto-scaling the iteration count until
/// the measured loop time passes ~50 ms.
inline void run_one(const Benchmark& bench, std::int64_t arg, bool has_arg) {
  constexpr double kMinSeconds = 0.05;
  std::size_t iters = 1;
  double seconds = 0.0;
  std::int64_t items = 0;
  for (;;) {
    State state(arg, iters);
    bench.fn(state);
    seconds = state.seconds();
    items = state.items_processed();
    if (seconds >= kMinSeconds || iters >= (std::size_t{1} << 30)) break;
    double scale = seconds > 1e-9 ? (kMinSeconds * 1.4) / seconds : 1000.0;
    std::size_t next = static_cast<std::size_t>(iters * scale) + 1;
    iters = next > iters ? next : iters * 2;
  }
  std::string label = bench.name;
  if (has_arg) label += "/" + std::to_string(arg);
  double ns_per_op = seconds * 1e9 / static_cast<double>(iters);
  if (items > 0) {
    double rate = static_cast<double>(items) / seconds;
    std::printf("%-32s %12.1f ns/op %12zu iters %12.2fM items/s\n",
                label.c_str(), ns_per_op, iters, rate / 1e6);
  } else {
    std::printf("%-32s %12.1f ns/op %12zu iters\n", label.c_str(), ns_per_op,
                iters);
  }
}

inline int RunSpecifiedBenchmarks() {
  std::printf("%-32s %15s %18s\n", "benchmark (minibench fallback)", "time",
              "iterations");
  for (const Benchmark& bench : registry()) {
    if (bench.args.empty()) {
      run_one(bench, 0, /*has_arg=*/false);
    } else {
      for (std::int64_t arg : bench.args) run_one(bench, arg, /*has_arg=*/true);
    }
  }
  return static_cast<int>(registry().size());
}

}  // namespace minibench

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)
#define BENCHMARK(fn)                                                     \
  static ::minibench::Registrar* MINIBENCH_CONCAT(minibench_registrar_,   \
                                                  __LINE__) =             \
      ::minibench::make_registrar(#fn, fn)
