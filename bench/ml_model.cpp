// Reproduces Sec. IV-D: the ML cost model. Trains the HOGA-substitute MLP
// on structural variants of the benchmark suite (the OpenABC-D
// substitution), evaluates MAPE and Kendall's tau on held-out samples, and
// measures the per-evaluation speedup over the exact mapping cost model.
//
// Paper reference: delay MAPE 25.2%, Kendall tau 0.62; using the model
// saves ~28% flow runtime (that end-to-end number is measured in
// table2_qor).

#include <cstdio>

#include "bench_util.hpp"
#include "util/timer.hpp"

using namespace emorphic;
using namespace emorphic::bench;

int main() {
  std::printf("=== Sec. IV-D: ML cost model (HOGA substitute) ===\n\n");

  Dataset all;
  for (const auto& spec : epfl_specs()) {
    Aig circuit = make_epfl(spec.name);
    DatasetParams dp;
    dp.variants_per_circuit = circuit.num_ands() > 2500 ? 8 : 24;
    dp.rewrite.max_iterations = 3;
    dp.rewrite.max_enodes = 20000;
    dp.rewrite.time_limit_s = 3.0;
    dp.mapping.area_recovery = false;
    dp.mapping.num_cuts = 4;
    dp.seed = 17;
    Dataset d = generate_variants(circuit, CellLibrary::asap7_like(), dp);
    std::printf("[data] %-10s %3zu variants, delay range %8.1f .. %8.1f ps\n",
                spec.name.c_str(), d.size(),
                *std::min_element(d.delays.begin(), d.delays.end()),
                *std::max_element(d.delays.begin(), d.delays.end()));
    all.append(d);
  }
  Dataset train, test;
  split_dataset(all, 4, &train, &test);  // 75/25 split
  std::printf("\ntraining samples: %zu, held-out: %zu\n", train.size(),
              test.size());

  MlpParams mp;
  mp.epochs = 250;
  MlCostModel model(mp);
  Timer t_train;
  model.train(train.features, train.delays, train.areas);
  std::printf("training time: %.2f s\n\n", t_train.seconds());

  std::vector<double> pred_delay, pred_area;
  for (const auto& f : test.features) {
    pred_delay.push_back(model.predict_delay(f));
    pred_area.push_back(model.predict_area(f));
  }
  std::printf("%-24s %10s %14s\n", "held-out metric", "this repo", "paper");
  print_rule(52);
  std::printf("%-24s %9.1f%% %14s\n", "delay MAPE", mape(pred_delay, test.delays),
              "25.2%");
  std::printf("%-24s %10.2f %14s\n", "delay Kendall tau",
              kendall_tau(pred_delay, test.delays), "0.62");
  std::printf("%-24s %9.1f%% %14s\n", "area MAPE", mape(pred_area, test.areas),
              "-");
  std::printf("%-24s %10.2f %14s\n", "area Kendall tau",
              kendall_tau(pred_area, test.areas), "-");

  // --- per-evaluation speedup ----------------------------------------------
  Aig probe = make_epfl("sqrt");
  MapQorEvaluator exact(CellLibrary::asap7_like());
  Timer t_exact;
  for (int i = 0; i < 5; ++i) exact.evaluate(probe);
  double exact_ms = t_exact.milliseconds() / 5.0;
  Timer t_ml;
  for (int i = 0; i < 5; ++i) model.evaluate(probe);
  double ml_ms = t_ml.milliseconds() / 5.0;
  std::printf("\nper-evaluation cost on sqrt: exact map %.3f ms, ML %.3f ms "
              "(%.0fx faster)\n", exact_ms, ml_ms, exact_ms / std::max(ml_ms, 1e-6));
  std::printf("\nShape target: strong rank correlation (tau >~ 0.5) at a "
              "fraction of the exact model's evaluation cost.\n");
  return 0;
}
