// Reproduces Fig. 6: solution-space pruning. The baseline bottom-up
// extractor re-evaluates every e-node on every sweep; the pruned extractor
// (worklist + per-class cost cache + skip of provably-not-cheaper nodes)
// touches a fraction of the search space with identical greedy results.

#include <cstdio>

#include "bench_util.hpp"
#include "egraph/rules.hpp"
#include "util/timer.hpp"

using namespace emorphic;
using namespace emorphic::bench;

int main() {
  std::printf("=== Fig. 6: solution-space pruning ablation ===\n\n");
  std::printf("%-10s %9s | %12s %12s %9s | %12s %12s %9s | %7s %8s\n",
              "circuit", "#e-nodes", "full visits", "(passes)", "time(ms)",
              "pruned visits", "(skipped)", "time(ms)", "visit x", "same?");
  print_rule(118);

  std::vector<double> reductions;
  for (const auto& spec : epfl_specs()) {
    Aig circuit = make_epfl(spec.name);
    // Moderate rewriting so classes have many equivalent nodes (the
    // "commutative/associative redundancy" Fig. 6 talks about).
    CircuitEGraph ce = aig_to_egraph(dch_substitute(strash(circuit)));
    RunnerLimits limits;
    limits.max_iterations = 4;
    limits.max_enodes = circuit.num_ands() > 3000 ? 25000 : 15000;
    limits.time_limit_s = 5.0;
    limits.max_matches_per_rule = 2000;
    run_rewriting(ce.egraph, make_logic_rules(), limits);

    CostModel cost{CostKind::kDepth};
    ExtractStats full_stats;
    Timer t1;
    Extraction full = greedy_extract(ce.egraph, cost, &full_stats, false);
    double full_ms = t1.milliseconds();

    ExtractStats pruned_stats;
    Timer t2;
    Extraction pruned = greedy_extract(ce.egraph, cost, &pruned_stats, true);
    double pruned_ms = t2.milliseconds();

    double c_full = solution_cost(ce.egraph, full, cost, ce.roots);
    double c_pruned = solution_cost(ce.egraph, pruned, cost, ce.roots);
    double ratio = static_cast<double>(full_stats.enodes_visited) /
                   std::max<std::size_t>(1, pruned_stats.enodes_visited);
    reductions.push_back(ratio);

    std::printf(
        "%-10s %9zu | %12zu %12zu %9.1f | %12zu %12zu %9.1f | %6.1fx %8s\n",
        spec.name.c_str(), ce.egraph.num_enodes(), full_stats.enodes_visited,
        full_stats.passes, full_ms, pruned_stats.enodes_visited,
        pruned_stats.enodes_skipped, pruned_ms, ratio,
        c_full == c_pruned ? "yes" : "NO!");
  }
  print_rule(118);
  std::printf("geomean search-space reduction: %.1fx\n", geomean(reductions));
  std::printf("\nShape target (Fig. 6): pruning shrinks the searched node "
              "count by a large factor at identical extraction quality.\n");
  return 0;
}
