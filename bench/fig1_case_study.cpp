// Reproduces Fig. 1: the structural-bias case study. Repeated rounds of
// the technology-independent delay flow approach a near-local optimum;
// E-morphic's parallel structural exploration then finds circuits whose
// *mapped* delay beats that plateau.
//
// Output: normalized delay after each independent-optimization pass,
// followed by the delay E-morphic reaches from the plateau point.

#include <cstdio>

#include "bench_util.hpp"

using namespace emorphic;
using namespace emorphic::bench;

int main() {
  std::printf("=== Fig. 1: delay across optimization passes ===\n\n");
  const char* name = "multiplier";
  Aig circuit = make_epfl(name);
  FlowParams params = paper_flow_params();

  std::printf("circuit: %s (%u ANDs, %u levels)\n\n", name,
              circuit.num_ands(), circuit.num_levels());
  std::printf("%-28s %10s %12s\n", "stage", "delay(ps)", "normalized");

  MappedQor first = map_qor(circuit, *params.library, params.mapping);
  double norm = first.delay;
  std::printf("%-28s %10.1f %12.3f\n", "initial (direct map)", first.delay,
              1.0);

  // Independent optimization passes: each is one gated baseline round —
  // the incumbent only changes when the mapped delay improves, so the
  // trajectory descends onto the near-local-optimum plateau of Fig. 1.
  Aig cur = strash(circuit);
  Aig best = cur;
  double plateau = first.delay;
  for (unsigned round = 1; round <= 5; ++round) {
    cur = strash(cur);
    if (round % 2 == 0) {
      cur = sop_balance(strash(dch_substitute(cur)), params.sop_balance);
    } else {
      cur = dch_substitute(strash(sop_balance(cur, params.sop_balance)));
    }
    MappedNetlist netlist = map_to_cells(cur, *params.library, params.mapping);
    if (netlist.delay() < plateau) {
      plateau = netlist.delay();
      best = cur;
    }
    std::printf("%-28s %10.1f %12.3f\n",
                ("after pass " + std::to_string(round)).c_str(), plateau,
                plateau / norm);
  }

  // E-morphic structural exploration from the plateau.
  FlowParams em_params = params;
  em_params.rounds = 1;  // the plateau circuit is already optimized
  em_params.sa.moves_per_iteration = 4;
  EmorphicResult em = emorphic_flow(best, em_params);
  std::printf("%-28s %10.1f %12.3f\n", "E-morphic exploration", em.qor.delay,
              em.qor.delay / norm);

  std::printf("\nPlateau delay:   %10.1f ps\n", plateau);
  std::printf("E-morphic delay: %10.1f ps (%+.2f%% vs plateau)\n",
              em.qor.delay, 100.0 * (em.qor.delay / plateau - 1.0));
  std::printf("\nShape target (Fig. 1): independent passes flatten out; "
              "e-graph exploration moves below the plateau.\n");
  return 0;
}
