// Choice-aware vs. single-extraction technology mapping on identical
// rewritten e-graphs: the quantitative case for exporting the whole
// equivalence class instead of the one structure extraction committed to.
//
// Per benchgen circuit the harness builds an e-graph, runs a few
// saturation iterations, extracts once (greedy depth — deterministic), and
// then maps the same extraction twice:
//   * plain:  map_to_cells over the exported representative cone alone
//             (ring_cap = 0 — exactly the single extraction every flow
//             mapped before the choicemap stage existed);
//   * choice: egraph_to_choice_aig (SAT-verified rings of alternative
//             structures per class) + the choice-aware map_to_cells.
// Both runs see the identical base network, node numbering, and area-flow
// reference estimates, so the only difference is the choice rings — any
// QoR delta is attributable to cross-variant matching, not to tie-break
// noise. The raw cross-variant numbers are recorded as-is; the *adopted*
// cover is the flow's Pareto-gated one (map_with_choices_gated, exactly
// what the choicemap stage ships), under which choices can only improve
// the netlist. BENCH_choicemap.json records mapped area/delay (raw and
// adopted), export/mapping wall clock, and ring statistics. The exit code
// enforces:
//   * cec proves the plain, raw-choice, and adopted netlists equivalent to
//     the input circuit,
//   * the adopted cover's area is <= plain mapping's on EVERY circuit and
//     strictly better on at least one (with its delay never worse — that
//     is the gate's contract),
//   * at least one circuit exports a non-empty ring set (the comparison is
//     meaningless otherwise).
// The mapping-time overhead and the raw delay delta are recorded, not
// asserted (overhead is machine-dependent; raw realized delay after area
// recovery is only bounded by the pass-1 target, so it can wiggle within
// that bound — which is precisely why the gate exists).
//
// Builds with google-benchmark when available, and against the bundled
// minibench fallback otherwise (see EMORPHIC_USE_GBENCH in CMakeLists.txt).

#ifdef EMORPHIC_HAVE_GBENCH
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
namespace benchmark = minibench;
#endif

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "cec/cec.hpp"
#include "egraph/choices.hpp"
#include "egraph/rules.hpp"
#include "egraph/runner.hpp"
#include "flow/choice_export.hpp"
#include "mapper/tech_mapper.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace emorphic;

/// One rewritten e-graph + committed extraction, shared by both mappings.
struct Workload {
  CircuitEGraph ce;
  Extraction solution{0};
  Aig plain_aig;  // the representative cone alone (ring_cap = 0 export)
};

Workload build_workload(const Aig& aig) {
  Workload w;
  w.ce = aig_to_egraph(aig);
  RunnerParams params;
  params.max_iterations = 4;
  params.max_enodes = 30000;
  params.max_matches_per_rule = 5000;
  run_rewriting(w.ce.egraph, make_logic_rules(), params);
  w.solution = greedy_extract(w.ce.egraph, CostModel{CostKind::kDepth});
  // ring_cap = 0 exports the bare committed extraction with node numbering
  // identical to the full export's base cone: the fair plain baseline.
  ChoiceExportParams no_choices;
  no_choices.ring_cap = 0;
  w.plain_aig = egraph_to_choice_aig(w.ce, w.solution, no_choices).aig;
  return w;
}

// --- micro timing hooks ------------------------------------------------------

void BM_ChoiceExportAdder(benchmark::State& state) {
  Aig aig = make_adder(static_cast<unsigned>(state.range(0)));
  Workload w = build_workload(aig);
  for (auto _ : state) {
    ChoiceAig caig = egraph_to_choice_aig(w.ce, w.solution);
    benchmark::DoNotOptimize(caig.choices.num_alts());
  }
}
BENCHMARK(BM_ChoiceExportAdder)->Arg(8);

void BM_ChoiceMapAdder(benchmark::State& state) {
  Aig aig = make_adder(static_cast<unsigned>(state.range(0)));
  Workload w = build_workload(aig);
  ChoiceAig caig = egraph_to_choice_aig(w.ce, w.solution);
  Matcher matcher(CellLibrary::asap7_like());
  MapperWorkspace workspace;
  for (auto _ : state) {
    MappedNetlist netlist = map_to_cells(caig, matcher, {}, &workspace);
    benchmark::DoNotOptimize(netlist.num_gates());
  }
}
BENCHMARK(BM_ChoiceMapAdder)->Arg(8);

void BM_PlainMapAdder(benchmark::State& state) {
  Aig aig = make_adder(static_cast<unsigned>(state.range(0)));
  Workload w = build_workload(aig);
  Matcher matcher(CellLibrary::asap7_like());
  MapperWorkspace workspace;
  for (auto _ : state) {
    MappedNetlist netlist = map_to_cells(w.plain_aig, matcher, {}, &workspace);
    benchmark::DoNotOptimize(netlist.num_gates());
  }
}
BENCHMARK(BM_PlainMapAdder)->Arg(8);

// --- the comparison harness --------------------------------------------------

struct CircuitCase {
  std::string name;
  Aig aig;
};

bool run_comparison(const char* json_path) {
  std::vector<CircuitCase> cases;
  cases.push_back({"adder8", make_adder(8)});
  cases.push_back({"adder16", make_adder(16)});
  cases.push_back({"multiplier4", make_multiplier(4)});
  cases.push_back({"square5", make_square(5)});
  cases.push_back({"arbiter4", make_arbiter(4)});

  std::printf(
      "\n-- technology mapping: single extraction vs. choice-annotated "
      "e-class export (identical e-graphs) --\n");

  Matcher matcher(CellLibrary::asap7_like());
  MapperParams map_params;

  bool all_ok = true;
  bool any_strictly_better = false;
  bool any_rings = false;
  Json circuits = Json::array();
  for (CircuitCase& c : cases) {
    Workload w = build_workload(c.aig);

    Timer plain_timer;
    MappedNetlist plain = map_to_cells(w.plain_aig, matcher, map_params);
    double plain_map_s = plain_timer.seconds();

    ChoiceExportStats stats;
    Timer export_timer;
    ChoiceAig caig = egraph_to_choice_aig(w.ce, w.solution, {}, &stats);
    double export_s = export_timer.seconds();

    Timer choice_timer;
    MappedNetlist choice = map_to_cells(caig, matcher, map_params);
    double choice_map_s = choice_timer.seconds();

    // What the flow ships: the Pareto-gated cover.
    ChoiceMapOutcome adopted = map_with_choices_gated(caig, matcher, map_params);

    CecStatus plain_cec = cec(c.aig, plain.to_aig()).status;
    CecStatus choice_cec = cec(c.aig, choice.to_aig()).status;
    CecStatus adopted_cec = cec(c.aig, adopted.netlist.to_aig()).status;
    bool equivalent = plain_cec == CecStatus::kEquivalent &&
                      choice_cec == CecStatus::kEquivalent &&
                      adopted_cec == CecStatus::kEquivalent;
    double final_area = adopted.netlist.area();
    double final_delay = adopted.netlist.delay();
    bool area_no_worse = final_area <= plain.area() + 1e-9;
    bool delay_no_worse = final_delay <= plain.delay() + 1e-9;
    bool strictly_better = final_area < plain.area() - 1e-9;
    any_strictly_better = any_strictly_better || strictly_better;
    any_rings = any_rings || stats.alts_kept > 0;
    bool ok = equivalent && area_no_worse && delay_no_worse;
    all_ok = all_ok && ok;

    double overhead = plain_map_s > 0.0 ? choice_map_s / plain_map_s : 0.0;
    std::printf(
        "%-12s area %8.3f -> %8.3f (raw %8.3f) | delay %7.1f -> %7.1f | "
        "rings %4zu (%3zu alts, %zu rejected) | %s | map %6.4f s -> %6.4f s "
        "(%4.1fx) | cec %s/%s%s\n",
        c.name.c_str(), plain.area(), final_area, choice.area(),
        plain.delay(), final_delay, stats.classes_with_choices,
        stats.alts_kept, stats.alts_rejected,
        adopted.adopted_choice ? "adopted " : "fallback", plain_map_s,
        choice_map_s, overhead, cec_status_name(plain_cec),
        cec_status_name(choice_cec), ok ? "" : "  [FAIL]");

    Json entry = Json::object();
    entry["name"] = c.name;
    entry["ands_plain"] = static_cast<std::uint64_t>(w.plain_aig.num_ands());
    entry["ands_choice_aig"] = static_cast<std::uint64_t>(caig.aig.num_ands());
    entry["area_plain"] = plain.area();
    entry["area_choice_raw"] = choice.area();
    entry["area_adopted"] = final_area;
    entry["delay_plain"] = plain.delay();
    entry["delay_choice_raw"] = choice.delay();
    entry["delay_adopted"] = final_delay;
    entry["choice_adopted"] = adopted.adopted_choice;
    entry["plain_map_seconds"] = plain_map_s;
    entry["choice_map_seconds"] = choice_map_s;
    entry["choice_export_seconds"] = export_s;
    entry["map_overhead"] = overhead;
    // Upper bound on exportable alternatives across the whole e-graph —
    // how much structural diversity saturation recorded vs. how much the
    // capped, cone-restricted export materialized.
    entry["class_variant_potential"] =
        static_cast<std::uint64_t>(choice_potential(w.ce.egraph));
    entry["classes_with_choices"] =
        static_cast<std::uint64_t>(stats.classes_with_choices);
    entry["alts_kept"] = static_cast<std::uint64_t>(stats.alts_kept);
    entry["alts_rejected"] = static_cast<std::uint64_t>(stats.alts_rejected);
    entry["alts_dropped_cyclic"] =
        static_cast<std::uint64_t>(stats.alts_dropped_cyclic);
    entry["verify_sat_calls"] =
        static_cast<std::uint64_t>(stats.verify_sat_calls);
    entry["cec_plain"] = std::string(cec_status_name(plain_cec));
    entry["cec_choice"] = std::string(cec_status_name(choice_cec));
    entry["cec_adopted"] = std::string(cec_status_name(adopted_cec));
    entry["area_no_worse"] = area_no_worse;
    entry["delay_no_worse"] = delay_no_worse;
    entry["area_strictly_better"] = strictly_better;
    circuits.push_back(std::move(entry));
  }

  all_ok = all_ok && any_strictly_better && any_rings;
  std::printf(
      "strictly better on >= 1 circuit: %s | non-empty rings somewhere: "
      "%s\n",
      any_strictly_better ? "yes" : "NO [FAIL]", any_rings ? "yes" : "NO [FAIL]");

  Json doc = Json::object();
  doc["benchmark"] = "choicemap-single-extraction-vs-choice-mapping";
  doc["circuits"] = std::move(circuits);
  doc["any_area_strictly_better"] = any_strictly_better;
  doc["any_rings_exported"] = any_rings;
  doc["all_checks_passed"] = all_ok;

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", json_path);
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const char* json_path = argc > 1 ? argv[1] : "BENCH_choicemap.json";
  return run_comparison(json_path) ? 0 : 1;
}
