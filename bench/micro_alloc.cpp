// Steady-state allocation gate for the arena/SoA memory layout (the
// "allocation-free hot loop" overhaul): after warm-up, the e-graph
// saturation kernels, cut enumeration, and the full saturate→extract→map
// flow must stop touching the allocator.
//
// Two counters, two failure modes:
//  * a global operator new/delete replacement counts every C++ heap
//    allocation in the process — the steady-state delta per iteration must
//    be zero for the reused-structure loops and flat for the warm flow;
//  * emorphic::arena_block_allocs() counts the bump arenas' block mallocs
//    (compiled in under EMORPHIC_CHECKS; reads 0 otherwise) — warm epochs
//    must reuse their coalesced blocks instead of growing.
//
// Writes BENCH_alloc.json and enforces the gates via exit code, so CI fails
// the build when an allocation sneaks back into a hot loop.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>

#include "benchgen/arith.hpp"
#include "core/emorphic.hpp"
#include "flow/pipeline.hpp"
#include "flow/warm_cache.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

// Heap-allocation counter. malloc/free based (a replaced operator new must
// pair with a replaced delete); the arenas call std::malloc directly, so
// their block traffic is deliberately *not* counted here — that is what
// arena_block_allocs() tracks.
namespace {
std::uint64_t g_heap_allocs = 0;  // benches below are single-threaded
}  // namespace

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace emorphic;

Aig make_random_aig(unsigned pis, unsigned ands, std::uint64_t seed) {
  Rng rng(seed);
  Aig aig;
  std::vector<Lit> pool;
  for (unsigned i = 0; i < pis; ++i) pool.push_back(make_lit(aig.add_pi()));
  for (unsigned k = 0; k < ands; ++k) {
    Lit a = pool[rng.next_below(pool.size())];
    Lit b = pool[rng.next_below(pool.size())];
    if (rng.chance(0.5)) a = lit_not(a);
    if (rng.chance(0.5)) b = lit_not(b);
    pool.push_back(aig.make_and(a, b));
  }
  for (unsigned i = 0; i < 8; ++i) aig.add_po(pool[pool.size() - 1 - i]);
  return aig;
}

struct Measurement {
  std::uint64_t cold_allocs = 0;          // first iteration (fills caches)
  std::uint64_t steady_allocs = 0;        // per-iteration, after warm-up
  std::uint64_t steady_arena_blocks = 0;  // per-iteration, after warm-up
  bool steady_is_flat = true;             // all measured iters identical
};

/// Run `iters` iterations of `fn`, treating the first `warmup` as cache
/// filling. Records the cold cost, the (per-iteration) steady-state cost,
/// and whether the steady iterations all cost exactly the same.
template <typename Fn>
Measurement measure(int warmup, int iters, Fn&& fn) {
  Measurement m;
  std::uint64_t prev = 0;
  for (int i = 0; i < warmup + iters; ++i) {
    std::uint64_t allocs0 = g_heap_allocs;
    std::uint64_t blocks0 = arena_block_allocs();
    fn();
    std::uint64_t allocs = g_heap_allocs - allocs0;
    std::uint64_t blocks = arena_block_allocs() - blocks0;
    if (i == 0) m.cold_allocs = allocs;
    if (i >= warmup) {
      if (i > warmup && allocs != prev) m.steady_is_flat = false;
      prev = allocs;
      m.steady_allocs = allocs;
      m.steady_arena_blocks = blocks;
    }
  }
  return m;
}

/// E-graph kernels on one reused EGraph: build, merge, rebuild, clear.
/// Every container keeps its capacity across clear(), so a warm iteration
/// must perform zero heap allocations. rebuild()'s epoch reclaim may
/// allocate a fresh (coalesced) arena block when it compacts — at most one
/// per store per iteration.
Measurement bench_egraph_steady() {
  EGraph eg;
  std::vector<EClassId> classes;  // outside the loop: the bench itself
  classes.reserve(1600);          // must not charge the steady state
  return measure(3, 5, [&] {
    eg.clear();
    Rng rng(17);
    classes.clear();
    for (std::uint32_t i = 0; i < 64; ++i) classes.push_back(eg.add_var(i));
    for (int i = 0; i < 1500; ++i) {
      EClassId a = classes[rng.next_below(classes.size())];
      EClassId b = classes[rng.next_below(classes.size())];
      classes.push_back(eg.add_and(a, b));
    }
    for (int i = 0; i < 40; ++i) {
      eg.merge(classes[rng.next_below(64)], classes[rng.next_below(64)]);
    }
    eg.rebuild();
  });
}

/// Priority-cut enumeration through one reused CutArena (the SA evaluator's
/// pattern): every enumeration is an arena epoch, so a warm iteration does
/// zero heap allocations and zero arena block mallocs.
Measurement bench_cut_steady() {
  Aig aig = make_random_aig(16, 2000, 23);
  CutArena arena;
  CutParams params;
  std::uint64_t checksum = 0;
  Measurement m = measure(2, 5, [&] {
    CutManager cuts(aig, params, &arena);
    for (Var v = 0; v < aig.num_nodes(); ++v) checksum += cuts.cuts(v).size();
  });
  std::printf("  (cut checksum %llu)\n",
              static_cast<unsigned long long>(checksum));
  return m;
}

/// The full saturate→extract→map flow through one long-lived FlowContext —
/// the synthesis service's per-worker steady state. A flow run builds fresh
/// result structures, so its warm cost is not zero; the gates are that it
/// is *flat* (identical allocation count every warm iteration — nothing
/// accumulates) and far below the cold run (the workspaces, matcher, and
/// QoR memo absorbed the bulk).
Measurement bench_flow_steady() {
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.rewrite.time_limit_s = 1e9;
  params.sa.num_threads = 1;  // deterministic allocation counts
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.verify = false;

  Aig input = make_adder(6);
  WarmCache cache;
  FlowContext ctx;
  Pipeline pipeline = Pipeline::emorphic();
  return measure(2, 4, [&] {
    ctx.params = params;
    cache.prepare(ctx);
    ctx.input = input;
    ctx.seed = 1;
    static_cast<void>(pipeline.run(ctx));
  });
}

Json to_json(const Measurement& m, bool pass) {
  Json j = Json::object();
  j["cold_allocs"] = m.cold_allocs;
  j["steady_allocs_per_iter"] = m.steady_allocs;
  j["steady_arena_blocks_per_iter"] = m.steady_arena_blocks;
  j["steady_is_flat"] = m.steady_is_flat;
  j["pass"] = pass;
  return j;
}

void report(const char* name, const Measurement& m, bool pass) {
  std::printf("%-14s cold %8llu allocs, steady %6llu allocs/iter, "
              "%llu arena blocks/iter, flat: %s  -> %s\n",
              name, static_cast<unsigned long long>(m.cold_allocs),
              static_cast<unsigned long long>(m.steady_allocs),
              static_cast<unsigned long long>(m.steady_arena_blocks),
              m.steady_is_flat ? "yes" : "NO", pass ? "pass" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_alloc.json";

  std::printf("-- steady-state allocation gates (arena/SoA layout) --\n");
  Measurement eg = bench_egraph_steady();
  Measurement cut = bench_cut_steady();
  Measurement flow = bench_flow_steady();

  // The reused-structure loops must be allocation-free once warm: zero heap
  // allocations, zero arena block mallocs (epoch reclaim ping-pongs between
  // two warm arenas, so even compaction-every-rebuild stays at zero).
#ifdef EMORPHIC_CHECKS
  // EM_CHECK_EXPENSIVE deep-validates inside rebuild() and allocates by
  // design; in that build, gate on flatness and the arena counter instead.
  bool eg_pass = eg.steady_is_flat && eg.steady_arena_blocks == 0;
  bool cut_pass = cut.steady_is_flat && cut.steady_arena_blocks == 0;
#else
  bool eg_pass = eg.steady_allocs == 0 && eg.steady_arena_blocks == 0;
  bool cut_pass = cut.steady_allocs == 0 && cut.steady_arena_blocks == 0;
#endif
  // A full flow builds fresh per-run results (e-graph, extraction, mapped
  // netlists), so its warm cost is not zero; the gates are that nothing
  // accumulates run over run (flat) and that warm runs stay strictly below
  // the cold one (the context's workspaces and the memo are doing work).
  bool flow_pass = flow.steady_is_flat && flow.steady_allocs < flow.cold_allocs;

  report("egraph_steady", eg, eg_pass);
  report("cut_steady", cut, cut_pass);
  report("flow_steady", flow, flow_pass);
#ifndef EMORPHIC_CHECKS
  std::printf("(EMORPHIC_CHECKS off: arena block counts read 0 by design)\n");
#endif

  Json doc = Json::object();
  doc["benchmark"] = "steady-state-allocations";
#ifdef EMORPHIC_CHECKS
  doc["arena_counter_enabled"] = true;
#else
  doc["arena_counter_enabled"] = false;
#endif
  doc["egraph_steady"] = to_json(eg, eg_pass);
  doc["cut_steady"] = to_json(cut, cut_pass);
  doc["flow_steady"] = to_json(flow, flow_pass);
  bool all_pass = eg_pass && cut_pass && flow_pass;
  doc["pass"] = all_pass;

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", json_path);
  return all_pass ? 0 : 1;
}
