// Reproduces Table II: QoR and runtime comparison between the baseline
// delay-oriented flow [22] and E-morphic (without and with the ML cost
// model) on the ten EPFL-like circuits.
//
// Paper reference (full-size EPFL, dual-Xeon server): E-morphic w/o ML
// saves 12.54% area and 7.29% delay at the geomean over the baseline; the
// ML mode trades some of that back for ~28% less runtime. Absolute numbers
// here differ (scaled circuits, synthetic library); the reproduction target
// is the *shape*: delay reduced on (nearly) all designs, area saved on
// average, ML mode faster than exact mode.

#include <cstdio>

#include "bench_util.hpp"

using namespace emorphic;
using namespace emorphic::bench;

namespace {

struct Row {
  std::string name;
  FlowQor base, em, ml;
  CecStatus em_ok, ml_ok;
};

MlCostModel train_shared_model(const std::vector<std::string>& names) {
  // The OpenABC-D substitution: variants of every benchmark, labelled by
  // the exact mapper, one shared model (Sec. IV-D).
  Dataset all;
  for (const auto& name : names) {
    Aig circuit = make_epfl(name);
    DatasetParams dp;
    dp.variants_per_circuit = circuit.num_ands() > 2500 ? 6 : 16;
    dp.rewrite.max_iterations = 3;
    dp.rewrite.max_enodes = 20000;
    dp.rewrite.time_limit_s = 3.0;
    dp.mapping.area_recovery = false;
    dp.mapping.num_cuts = 4;
    all.append(generate_variants(circuit, CellLibrary::asap7_like(), dp));
  }
  MlpParams mp;
  mp.epochs = 150;
  MlCostModel model(mp);
  model.train(all.features, all.delays, all.areas);
  std::printf("[setup] ML cost model trained on %zu structural variants\n\n",
              all.size());
  return model;
}

}  // namespace

int main() {
  std::printf("=== Table II: QoR and runtime, baseline vs. E-morphic ===\n\n");
  const auto names = epfl_names();
  MlCostModel ml_model = train_shared_model(names);

  std::vector<Row> rows;
  for (const auto& name : names) {
    Aig circuit = make_epfl(name);
    FlowParams params = paper_flow_params();
    // Scale the e-graph budget with circuit size to keep runtimes sane.
    if (circuit.num_ands() > 3000) {
      params.rewrite.max_enodes = 40000;
      params.sa.moves_per_iteration = 2;
    }

    Row row;
    row.name = name;
    BaselineResult base = baseline_flow(circuit, params);
    row.base = base.qor;

    EmorphicResult em = emorphic_flow(circuit, params);
    row.em = em.qor;
    row.em_ok = cec(circuit, em.final_aig, CecParams{8, 50000, 1}).status;

    FlowParams ml_params = params;
    ml_params.sa.num_threads = 6;  // runtime-prioritized mode (Sec. IV-A)
    EmorphicResult ml = emorphic_flow(circuit, ml_params, &ml_model);
    row.ml = ml.qor;
    row.ml_ok = cec(circuit, ml.final_aig, CecParams{8, 50000, 1}).status;

    rows.push_back(row);
    std::printf("[done] %-10s base delay %8.1f | em %8.1f | ml %8.1f\n",
                name.c_str(), row.base.delay, row.em.delay, row.ml.delay);
  }

  std::printf("\n%-10s | %29s | %29s | %29s\n", "", "SOP Balancing Baseline",
              "+ E-morphic (w/o ML)", "+ E-morphic (w/ ML)");
  std::printf("%-10s | %9s %9s %4s %8s | %9s %9s %4s %8s | %9s %9s %4s %8s\n",
              "Circuit", "Area", "Delay", "lev", "time(s)", "Area", "Delay",
              "lev", "time(s)", "Area", "Delay", "lev", "time(s)");
  print_rule();
  std::vector<double> ab, db, tb, ae, de, te, am, dm, tm;
  for (const Row& r : rows) {
    std::printf(
        "%-10s | %9.1f %9.1f %4u %8.2f | %9.1f %9.1f %4u %8.2f | %9.1f %9.1f "
        "%4u %8.2f\n",
        r.name.c_str(), r.base.area, r.base.delay, r.base.lev, r.base.seconds,
        r.em.area, r.em.delay, r.em.lev, r.em.seconds, r.ml.area, r.ml.delay,
        r.ml.lev, r.ml.seconds);
    ab.push_back(r.base.area);
    db.push_back(r.base.delay);
    tb.push_back(r.base.seconds);
    ae.push_back(r.em.area);
    de.push_back(r.em.delay);
    te.push_back(r.em.seconds);
    am.push_back(r.ml.area);
    dm.push_back(r.ml.delay);
    tm.push_back(r.ml.seconds);
  }
  print_rule();
  std::printf(
      "%-10s | %9.1f %9.1f %4s %8.2f | %9.1f %9.1f %4s %8.2f | %9.1f %9.1f "
      "%4s %8.2f\n",
      "GEOMEAN", geomean(ab), geomean(db), "-", geomean(tb), geomean(ae),
      geomean(de), "-", geomean(te), geomean(am), geomean(dm), "-",
      geomean(tm));
  std::printf("\nImprovement of E-morphic (w/o ML) over baseline:\n");
  std::printf("  area:  %+6.2f%%  (paper: +12.54%% saving)\n",
              100.0 * (1.0 - geomean(ae) / geomean(ab)));
  std::printf("  delay: %+6.2f%%  (paper: +7.29%% reduction)\n",
              100.0 * (1.0 - geomean(de) / geomean(db)));
  std::printf("Runtime saving of ML mode vs exact mode: %+6.2f%%  (paper: ~28%%)\n",
              100.0 * (1.0 - geomean(tm) / geomean(te)));

  std::printf("\nEquivalence checking (cec):\n");
  for (const Row& r : rows) {
    std::printf("  %-10s w/o ML: %-14s w/ ML: %s\n", r.name.c_str(),
                cec_status_name(r.em_ok), cec_status_name(r.ml_ok));
  }
  return 0;
}
