#pragma once
// Shared scaffolding for the paper-reproduction benches: geometric means,
// fixed-width table printing, and the common flow parameters used by the
// Table II / Fig. 9 harnesses.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/emorphic.hpp"

namespace emorphic::bench {

inline double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += std::log(std::max(v, 1e-12));
  return std::exp(acc / static_cast<double>(values.size()));
}

inline void print_rule(unsigned width = 118) {
  for (unsigned i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// The flow configuration used by the QoR benches: matched to the paper's
/// settings (5 rewrite iterations, SA with 4 annealing iterations, T1=2000,
/// 4 threads in quality mode) but with laptop-scale e-graph limits.
inline FlowParams paper_flow_params() {
  FlowParams params;
  params.rounds = 4;                      // [(st; if -g)(st; dch; map)] x4
  params.rewrite.max_iterations = 5;      // Sec. IV-A
  params.rewrite.max_enodes = 60000;      // laptop-scale stand-in for 256 GB
  params.rewrite.time_limit_s = 10.0;
  params.rewrite.max_matches_per_rule = 4000;
  params.sa.iterations = 4;               // Sec. IV-A exit condition
  params.sa.initial_temperature = 2000.0; // T1
  params.sa.moves_per_iteration = 3;
  params.sa.num_threads = 4;              // quality-prioritized mode
  params.verify = false;                  // benches verify separately
  return params;
}

}  // namespace emorphic::bench
