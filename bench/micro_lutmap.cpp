// Micro-benchmarks for the parallel cut-enumeration + k-LUT mapping PR:
//
//   * serial vs. wave-parallel cut enumeration throughput (the tentpole's
//     perf claim), with the bit-identical guarantee *enforced* — the
//     harness exits non-zero if any thread count changes any cut list;
//   * LUT mapping vs. standard-cell mapping QoR on the same circuits,
//     every LUT cover CEC-proven against its input (also exit-code
//     enforced).
//
// Speedups are recorded in BENCH_lutmap.json, not asserted: CI runners
// (and this repo's dev container) may expose a single core, where the
// wave overhead makes parallel enumeration a wash. Correctness — parallel
// == serial, cover == input — is what the exit code gates.
//
// Builds with google-benchmark when available, and against the bundled
// minibench fallback otherwise (see EMORPHIC_USE_GBENCH in CMakeLists.txt).

#ifdef EMORPHIC_HAVE_GBENCH
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
namespace benchmark = minibench;
#endif

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "aig/cut.hpp"
#include "benchgen/arith.hpp"
#include "cec/cec.hpp"
#include "mapper/lut_mapper.hpp"
#include "mapper/tech_mapper.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace emorphic;

Aig make_random_aig(unsigned pis, unsigned ands, std::uint64_t seed) {
  Rng rng(seed);
  Aig aig;
  std::vector<Lit> pool;
  for (unsigned i = 0; i < pis; ++i) pool.push_back(make_lit(aig.add_pi()));
  for (unsigned k = 0; k < ands; ++k) {
    Lit a = pool[rng.next_below(pool.size())];
    Lit b = pool[rng.next_below(pool.size())];
    if (rng.chance(0.5)) a = lit_not(a);
    if (rng.chance(0.5)) b = lit_not(b);
    pool.push_back(aig.make_and(a, b));
  }
  for (unsigned i = 0; i < 8; ++i) aig.add_po(pool[pool.size() - 1 - i]);
  return aig;
}

bool cuts_identical(const CutManager& a, const CutManager& b, std::size_t n) {
  for (Var v = 0; v < n; ++v) {
    const auto& ca = a.cuts(v);
    const auto& cb = b.cuts(v);
    if (ca.size() != cb.size()) return false;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      if (ca[i].size != cb[i].size || ca[i].tt != cb[i].tt ||
          ca[i].leaves != cb[i].leaves) {
        return false;
      }
    }
  }
  return true;
}

void BM_CutEnumSerial(benchmark::State& state) {
  Aig aig = make_random_aig(24, static_cast<unsigned>(state.range(0)), 7);
  CutArena arena;
  for (auto _ : state) {
    CutManager cuts(aig, CutParams{6, 8}, &arena);
    benchmark::DoNotOptimize(cuts.cuts(aig.num_nodes() - 1).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CutEnumSerial)->Arg(4000)->Arg(20000);

void BM_CutEnumParallel4(benchmark::State& state) {
  Aig aig = make_random_aig(24, static_cast<unsigned>(state.range(0)), 7);
  CutArena arena;
  ThreadPool pool(4);
  for (auto _ : state) {
    CutManager cuts(aig, CutParams{6, 8}, &arena, &pool);
    benchmark::DoNotOptimize(cuts.cuts(aig.num_nodes() - 1).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CutEnumParallel4)->Arg(4000)->Arg(20000);

void BM_LutMap(benchmark::State& state) {
  Aig aig = make_random_aig(24, static_cast<unsigned>(state.range(0)), 7);
  LutWorkspace workspace;
  for (auto _ : state) {
    LutNetwork network = map_to_luts(aig, {}, &workspace);
    benchmark::DoNotOptimize(network.num_luts());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LutMap)->Arg(4000)->Arg(20000);

// --- serial-vs-parallel + LUT-vs-cell comparison harness ---------------------

struct EnumOutcome {
  double seconds = 0.0;  // best of repeats
  bool identical = true;
};

EnumOutcome run_enumeration(const Aig& aig, const CutManager& reference,
                            unsigned threads, int repeats) {
  EnumOutcome out;
  CutArena arena;
  ThreadPool pool(threads);
  for (int rep = 0; rep < repeats; ++rep) {
    Timer timer;
    CutManager cuts(aig, CutParams{6, 8}, &arena,
                    threads > 1 ? &pool : nullptr);
    double seconds = timer.seconds();
    if (rep == 0 || seconds < out.seconds) out.seconds = seconds;
    out.identical =
        out.identical && cuts_identical(reference, cuts, aig.num_nodes());
  }
  return out;
}

bool run_comparison(const char* json_path) {
  const int repeats = 3;
  const unsigned thread_counts[] = {2, 4};

  std::printf("\n-- wave-parallel cut enumeration vs. serial "
              "(bit-identical enforced) --\n");

  Json enum_results = Json::array();
  bool all_identical = true;
  struct Workload {
    std::string name;
    Aig aig;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"adder64", make_adder(64)});
  workloads.push_back({"random20k", make_random_aig(24, 20000, 7)});

  for (const Workload& wl : workloads) {
    CutManager reference(wl.aig, CutParams{6, 8});
    EnumOutcome serial = run_enumeration(wl.aig, reference, 1, repeats);
    Json entry = Json::object();
    entry["circuit"] = wl.name;
    entry["nodes"] = static_cast<std::uint64_t>(wl.aig.num_nodes());
    entry["serial_seconds"] = serial.seconds;
    std::printf("%-10s %7zu nodes: serial %8.4f s\n", wl.name.c_str(),
                static_cast<std::size_t>(wl.aig.num_nodes()), serial.seconds);
    for (unsigned threads : thread_counts) {
      EnumOutcome par = run_enumeration(wl.aig, reference, threads, repeats);
      double speedup = par.seconds > 0.0 ? serial.seconds / par.seconds : 0.0;
      entry["parallel_" + std::to_string(threads) + "_seconds"] = par.seconds;
      entry["speedup_" + std::to_string(threads)] = speedup;
      all_identical = all_identical && par.identical;
      std::printf("             %u threads: %8.4f s  (%.2fx; identical: %s)\n",
                  threads, par.seconds, speedup,
                  par.identical ? "yes" : "NO");
    }
    enum_results.push_back(std::move(entry));
  }

  std::printf("\n-- k-LUT vs. standard-cell mapping QoR (covers CEC-proven) "
              "--\n");
  Json qor_results = Json::array();
  bool all_equivalent = true;
  const CellLibrary& lib = CellLibrary::asap7_like();
  std::vector<Workload> qor_workloads;
  qor_workloads.push_back({"adder16", make_adder(16)});
  qor_workloads.push_back({"multiplier6", make_multiplier(6)});
  qor_workloads.push_back({"random2k", make_random_aig(16, 2000, 21)});
  for (const Workload& wl : qor_workloads) {
    LutNetwork luts = map_to_luts(wl.aig);
    bool ok = cec(wl.aig, luts.to_aig()).status == CecStatus::kEquivalent;
    all_equivalent = all_equivalent && ok;
    MappedQor cells = map_qor(wl.aig, lib);
    Json entry = Json::object();
    entry["circuit"] = wl.name;
    entry["lut_count"] = static_cast<std::uint64_t>(luts.num_luts());
    entry["lut_depth"] = static_cast<std::uint64_t>(luts.depth());
    entry["cell_area"] = cells.area;
    entry["cell_delay"] = cells.delay;
    entry["cec_equivalent"] = ok;
    std::printf("%-12s luts=%5zu depth=%3u | cells area=%9.1f delay=%7.1f | "
                "cec: %s\n",
                wl.name.c_str(), luts.num_luts(), luts.depth(), cells.area,
                cells.delay, ok ? "yes" : "NO");
    qor_results.push_back(std::move(entry));
  }

  Json doc = Json::object();
  doc["benchmark"] = "lutmap-parallel-enumeration-and-qor";
  doc["repeats"] = static_cast<std::uint64_t>(repeats);
  doc["enumeration"] = std::move(enum_results);
  doc["qor"] = std::move(qor_results);
  doc["parallel_identical"] = all_identical;
  doc["covers_equivalent"] = all_equivalent;

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", json_path);

  return all_identical && all_equivalent;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const char* json_path = argc > 1 ? argv[1] : "BENCH_lutmap.json";
  return run_comparison(json_path) ? 0 : 1;
}
