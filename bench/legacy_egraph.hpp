#pragma once
// The pre-overhaul e-graph core, preserved verbatim for the before/after
// saturation benchmark in bench/micro_egraph.cpp.
//
// This is the seed implementation that src/egraph/ replaced: a
// std::unordered_map<ENode, EClassId> hashcons, std::vector-backed class
// member lists, a const_cast path-halving union-find, a full-graph stale
// sweep on every rebuild, and a runner that scans every rule against every
// e-class with no head-operator index and no threading. Keeping it here (and
// only here — nothing in src/ uses it) lets BENCH_egraph.json report a real
// old-vs-new speedup from a single binary, on the same machine, forever.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "egraph/language.hpp"
#include "egraph/pattern.hpp"

namespace emorphic::legacy {

struct EClass {
  std::vector<ENode> nodes;
  std::vector<std::pair<ENode, EClassId>> parents;
};

/// The seed EGraph, byte-for-byte the algorithm that shipped before the
/// performance overhaul (method comments trimmed).
class EGraph {
 public:
  EGraph() = default;

  EClassId find(EClassId id) const {
    while (parent_[id] != id) {
      const_cast<EGraph*>(this)->parent_[id] = parent_[parent_[id]];
      id = parent_[id];
    }
    return id;
  }

  ENode canonicalize(ENode node) const {
    for (unsigned i = 0; i < node.arity(); ++i) {
      node.children[i] = find(node.children[i]);
    }
    if ((node.op == Op::kAnd || node.op == Op::kOr || node.op == Op::kXor) &&
        node.children[0] > node.children[1]) {
      std::swap(node.children[0], node.children[1]);
    }
    return node;
  }

  EClassId add(ENode node) {
    node = canonicalize(node);
    auto it = hashcons_.find(node);
    if (it != hashcons_.end()) return find(it->second);
    EClassId id = make_class(node);
    hashcons_.emplace(node, id);
    for (unsigned i = 0; i < node.arity(); ++i) {
      classes_[node.children[i]].parents.emplace_back(node, id);
    }
    return id;
  }

  EClassId add_const0() { return add(ENode::const0()); }
  EClassId add_var(std::uint32_t symbol) { return add(ENode::var(symbol)); }
  EClassId add_not(EClassId a) { return add(ENode::not_of(a)); }
  EClassId add_and(EClassId a, EClassId b) { return add(ENode::and_of(a, b)); }

  EClassId merge(EClassId a, EClassId b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    if (rank_[a] == rank_[b]) ++rank_[a];
    parent_[b] = a;

    auto& wa = classes_[a];
    auto& wb = classes_[b];
    wa.nodes.insert(wa.nodes.end(), wb.nodes.begin(), wb.nodes.end());
    wa.parents.insert(wa.parents.end(), wb.parents.begin(), wb.parents.end());
    wb.nodes.clear();
    wb.nodes.shrink_to_fit();
    wb.parents.clear();
    wb.parents.shrink_to_fit();

    worklist_.push_back(a);
    return a;
  }

  std::size_t rebuild() {
    std::size_t merges = 0;
    bool repaired_any = !worklist_.empty();
    while (!worklist_.empty()) {
      std::vector<EClassId> todo;
      todo.swap(worklist_);
      std::unordered_set<EClassId> deduped;
      for (EClassId id : todo) deduped.insert(find(id));
      for (EClassId id : deduped) {
        std::size_t before = worklist_.size();
        repair(id);
        merges += worklist_.size() - before;
      }
    }
    if (repaired_any) {
      // The seed's full-graph sweep: every class is checked for stale nodes.
      for (EClassId id = 0; id < classes_.size(); ++id) {
        if (find(id) != id) continue;
        EClass& cls = classes_[id];
        bool stale = false;
        for (const ENode& n : cls.nodes) {
          if (!(canonicalize(n) == n)) {
            stale = true;
            break;
          }
        }
        if (!stale) continue;
        std::unordered_set<ENode, ENodeHash> uniq;
        uniq.reserve(cls.nodes.size());
        std::vector<ENode> deduped_nodes;
        deduped_nodes.reserve(cls.nodes.size());
        for (const ENode& n : cls.nodes) {
          ENode canon = canonicalize(n);
          if (uniq.insert(canon).second) deduped_nodes.push_back(canon);
        }
        cls.nodes = std::move(deduped_nodes);
      }
    }
    return merges;
  }

  const EClass& eclass(EClassId id) const { return classes_[find(id)]; }
  std::size_t num_classes_created() const { return classes_.size(); }

  std::size_t num_classes() const {
    std::size_t count = 0;
    for (EClassId id = 0; id < classes_.size(); ++id) {
      if (find(id) == id) ++count;
    }
    return count;
  }

  std::size_t num_enodes() const {
    std::size_t count = 0;
    for (EClassId id = 0; id < classes_.size(); ++id) {
      if (find(id) == id) count += classes_[id].nodes.size();
    }
    return count;
  }

  std::vector<EClassId> class_ids() const {
    std::vector<EClassId> ids;
    ids.reserve(classes_.size());
    for (EClassId id = 0; id < classes_.size(); ++id) {
      if (find(id) == id) ids.push_back(id);
    }
    return ids;
  }

 private:
  EClassId make_class(ENode node) {
    EClassId id = static_cast<EClassId>(classes_.size());
    parent_.push_back(id);
    rank_.push_back(0);
    classes_.emplace_back();
    classes_[id].nodes.push_back(node);
    return id;
  }

  void repair(EClassId id) {
    id = find(id);
    EClass& cls = classes_[id];

    std::vector<std::pair<ENode, EClassId>> old_parents;
    old_parents.swap(cls.parents);

    std::unordered_map<ENode, EClassId, ENodeHash> seen;
    seen.reserve(old_parents.size());
    for (auto& [pnode, pclass] : old_parents) {
      hashcons_.erase(pnode);
      ENode canon = canonicalize(pnode);
      EClassId pcanon = find(pclass);
      auto it = seen.find(canon);
      if (it != seen.end()) {
        EClassId merged = merge(it->second, pcanon);
        it->second = find(merged);
      } else {
        seen.emplace(canon, pcanon);
      }
    }
    EClass& cls2 = classes_[find(id)];
    for (auto& [canon, pclass] : seen) {
      hashcons_[canon] = find(pclass);
      cls2.parents.emplace_back(canon, find(pclass));
    }

    EClass& cls3 = classes_[find(id)];
    std::unordered_set<ENode, ENodeHash> uniq;
    uniq.reserve(cls3.nodes.size());
    std::vector<ENode> deduped;
    deduped.reserve(cls3.nodes.size());
    for (ENode& n : cls3.nodes) {
      ENode canon = canonicalize(n);
      if (uniq.insert(canon).second) deduped.push_back(canon);
    }
    cls3.nodes = std::move(deduped);
  }

  std::vector<EClassId> parent_;
  std::vector<std::uint32_t> rank_;
  std::vector<EClass> classes_;
  std::unordered_map<ENode, EClassId, ENodeHash> hashcons_;
  std::vector<EClassId> worklist_;
};

// --- the seed e-matcher, retargeted at legacy::EGraph -----------------------

class Matcher {
 public:
  Matcher(const EGraph& egraph, const Pattern& pattern, std::vector<Subst>& out,
          std::size_t limit)
      : egraph_(egraph), pattern_(pattern), out_(out), limit_(limit) {}

  void run(EClassId root) {
    Subst subst(pattern_.num_vars(), kNoEClass);
    match(pattern_.root(), root, subst);
  }

 private:
  bool full() const { return out_.size() >= limit_; }

  void match(std::int32_t pi, EClassId cls, Subst& subst) {
    if (full()) return;
    cls = egraph_.find(cls);
    const Pattern::Node& pn = pattern_.nodes()[pi];
    if (pn.is_var) {
      if (subst[pn.var] == kNoEClass) {
        subst[pn.var] = cls;
        descend(subst);
        subst[pn.var] = kNoEClass;
      } else if (subst[pn.var] == cls) {
        descend(subst);
      }
      return;
    }
    for (const ENode& enode : egraph_.eclass(cls).nodes) {
      if (full()) return;
      if (enode.op != pn.op) continue;
      switch (op_arity(pn.op)) {
        case 0:
          descend(subst);
          break;
        case 1:
          frames_.push_back({pn.children[0], egraph_.find(enode.children[0])});
          descend(subst);
          frames_.pop_back();
          break;
        case 2: {
          bool commutative = pn.op == Op::kAnd || pn.op == Op::kOr ||
                             pn.op == Op::kXor;
          EClassId c0 = egraph_.find(enode.children[0]);
          EClassId c1 = egraph_.find(enode.children[1]);
          frames_.push_back({pn.children[0], c0});
          frames_.push_back({pn.children[1], c1});
          descend(subst);
          frames_.pop_back();
          frames_.pop_back();
          if (commutative && c0 != c1) {
            frames_.push_back({pn.children[0], c1});
            frames_.push_back({pn.children[1], c0});
            descend(subst);
            frames_.pop_back();
            frames_.pop_back();
          }
          break;
        }
      }
    }
  }

  struct Frame {
    std::int32_t pattern_node;
    EClassId cls;
  };

  void descend(Subst& subst) {
    if (frames_.empty()) {
      out_.push_back(subst);
      return;
    }
    Frame f = frames_.back();
    frames_.pop_back();
    match(f.pattern_node, f.cls, subst);
    frames_.push_back(f);
  }

  const EGraph& egraph_;
  const Pattern& pattern_;
  std::vector<Subst>& out_;
  std::size_t limit_;
  std::vector<Frame> frames_;
};

inline void match_in_class(const EGraph& egraph, const Pattern& pattern,
                           EClassId root, std::vector<Subst>& out,
                           std::size_t limit) {
  Matcher(egraph, pattern, out, limit).run(root);
}

inline EClassId instantiate(EGraph& egraph, const Pattern& pattern,
                            const Subst& subst) {
  std::vector<EClassId> result(pattern.nodes().size(), kNoEClass);
  for (std::size_t i = 0; i < pattern.nodes().size(); ++i) {
    const Pattern::Node& n = pattern.nodes()[i];
    if (n.is_var) {
      result[i] = subst[n.var];
      continue;
    }
    ENode enode;
    enode.op = n.op;
    for (unsigned c = 0; c < op_arity(n.op); ++c) {
      enode.children[c] = result[n.children[c]];
    }
    result[i] = egraph.add(enode);
  }
  return result[pattern.root()];
}

// --- the seed runner loop ---------------------------------------------------

struct RunStats {
  std::size_t iterations = 0;
  std::size_t matches = 0;
  std::size_t applied = 0;
  std::size_t enodes = 0;
  std::size_t classes = 0;
};

/// The pre-overhaul saturation loop: full-scan serial matching, per-iteration
/// apply, one rebuild per iteration. Mirrors the seed run_rewriting but
/// without hooks/timing plumbing (those cost nothing measurable).
inline RunStats run_rewriting(EGraph& egraph, const std::vector<Rewrite>& rules,
                              std::size_t max_iterations,
                              std::size_t max_enodes,
                              std::size_t max_matches_per_rule) {
  RunStats stats;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    std::size_t enodes_before = egraph.num_enodes();
    std::size_t classes_before = egraph.num_classes();

    std::vector<EClassId> ids = egraph.class_ids();
    std::vector<std::vector<std::pair<EClassId, Subst>>> all_matches(
        rules.size());
    for (std::size_t r = 0; r < rules.size(); ++r) {
      std::vector<Subst> substs;
      for (EClassId id : ids) {
        substs.clear();
        match_in_class(egraph, rules[r].lhs, id, substs,
                       max_matches_per_rule -
                           std::min(max_matches_per_rule,
                                    all_matches[r].size()));
        for (auto& s : substs) all_matches[r].emplace_back(id, std::move(s));
        if (all_matches[r].size() >= max_matches_per_rule) break;
      }
      stats.matches += all_matches[r].size();
    }

    for (std::size_t r = 0; r < rules.size(); ++r) {
      for (auto& [cls, subst] : all_matches[r]) {
        EClassId rhs = instantiate(egraph, rules[r].rhs, subst);
        if (egraph.find(cls) != egraph.find(rhs)) {
          egraph.merge(cls, rhs);
          ++stats.applied;
        }
        if (egraph.num_classes_created() > max_enodes) break;
      }
      if (egraph.num_classes_created() > max_enodes) break;
    }

    egraph.rebuild();
    ++stats.iterations;

    std::size_t enodes_after = egraph.num_enodes();
    std::size_t classes_after = egraph.num_classes();
    if (enodes_after >= max_enodes) break;
    if (enodes_after == enodes_before && classes_after == classes_before) {
      break;
    }
  }
  stats.enodes = egraph.num_enodes();
  stats.classes = egraph.num_classes();
  return stats;
}

/// AIG -> legacy e-graph, mirroring flow/conversion's aig_to_egraph (minus
/// root bookkeeping, which the saturation benchmark does not need).
inline EGraph egraph_from_aig(const Aig& aig) {
  EGraph eg;
  std::vector<EClassId> class_of(aig.num_nodes(), kNoEClass);
  class_of[0] = eg.add_const0();
  auto lit_class = [&](Lit lit) {
    EClassId base = class_of[lit_var(lit)];
    return lit_is_compl(lit) ? eg.add_not(base) : base;
  };
  for (Var v = 1; v < aig.num_nodes(); ++v) {
    if (aig.is_pi(v)) {
      class_of[v] = eg.add_var(aig.pi_index(v));
    } else {
      class_of[v] = eg.add_and(lit_class(aig.fanin0(v)),
                               lit_class(aig.fanin1(v)));
    }
  }
  return eg;
}

}  // namespace emorphic::legacy
