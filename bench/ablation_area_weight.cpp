// Ablation for a design choice this reproduction adds on top of the paper:
// the area term in the SA cost (cost = delay + w * area). The paper states
// delay is the primary metric yet reports area *savings*; with w = 0 our
// SA drifts into area-bloated delay-optimal structures (tree-shaped
// extractions duplicate shared logic), while a moderate w recovers area at
// little delay cost. This bench sweeps w to expose that Pareto trade.

#include <cstdio>

#include "bench_util.hpp"

using namespace emorphic;
using namespace emorphic::bench;

int main() {
  std::printf("=== Ablation: area weight in the SA cost model ===\n\n");
  const char* names[] = {"multiplier", "sqrt", "sin"};
  for (const char* name : names) {
    Aig circuit = make_epfl(name);
    FlowParams params = paper_flow_params();
    params.rewrite.max_enodes = 30000;

    BaselineResult base = baseline_flow(circuit, params);
    std::printf("%s: baseline area %.1f, delay %.1f\n", name, base.qor.area,
                base.qor.delay);
    std::printf("%8s %12s %12s %14s %14s\n", "w", "area(um2)", "delay(ps)",
                "area vs base", "delay vs base");
    print_rule(66);
    for (double w : {0.0, 0.25, 0.5, 1.0, 2.0}) {
      FlowParams p = params;
      p.area_weight = w;
      EmorphicResult em = emorphic_flow(circuit, p);
      std::printf("%8.2f %12.1f %12.1f %+13.1f%% %+13.1f%%\n", w, em.qor.area,
                  em.qor.delay, 100.0 * (em.qor.area / base.qor.area - 1.0),
                  100.0 * (em.qor.delay / base.qor.delay - 1.0));
    }
    std::printf("\n");
  }
  std::printf("Shape target: w=0 minimizes delay but bloats area; moderate w "
              "recovers area at little delay cost.\n");
  return 0;
}
