// Scaling harness for the partitioned-saturation mode (ROADMAP item 4):
// tiled, locally-redundant benchgen circuits grown to 10^6+ AND nodes, run
// through partition_optimize at increasing sizes. Wall clock and QoR per
// rung go to BENCH_scale.json; the exit code enforces:
//   * the stitched circuit is equivalent to its input on every rung —
//     every adopted window is already SAT-proven by construction, the
//     stitched whole must agree with the input under random simulation,
//     and at the smallest rung a monolithic SAT miter must prove it
//     outright (one shared conflict budget, so the monolithic proof only
//     stays tractable there — exactly the wall this mode exists to avoid),
//   * the partitioned flow completes the >= 10^6-AND circuit and improves
//     it, while whole-circuit saturation under the same e-node budget (the
//     paper's memory cap) halts at the node limit with no AND reduction,
//   * a run killed after its first checkpoint chunk and resumed finishes
//     with byte-identical netlist and QoR to the uninterrupted run.
//
// Workload: tiles of doubled() arithmetic circuits — each tile carries two
// functionally equal, structurally different copies, so every window holds
// real merge opportunities for the per-window flow (saturation + SAT sweep)
// and the adopt/reject QoR gate has actual work to judge.
//
// Builds with google-benchmark when available, and against the bundled
// minibench fallback otherwise (see EMORPHIC_USE_GBENCH in CMakeLists.txt).

#ifdef EMORPHIC_HAVE_GBENCH
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
namespace benchmark = minibench;
#endif

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "aig/aig_io.hpp"
#include "aig/sim.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/doubling.hpp"
#include "benchgen/scale.hpp"
#include "cec/cec.hpp"
#include "flow/pipeline.hpp"
#include "opt/partition.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace emorphic;

Aig tile_base() { return doubled(make_adder(6)); }

/// One shared saturation budget for every mode in this harness: windows
/// convert and rewrite comfortably inside it; the 10^6-AND whole circuit
/// cannot even hold its initial e-graph under it.
PartitionParams scale_params() {
  PartitionParams p;
  p.window_size = 4000;
  p.seed = 1;
  p.rewrite.max_iterations = 1;
  p.rewrite.max_enodes = 12000;
  p.rewrite.max_matches_per_rule = 500;
  p.rewrite.time_limit_s = 1e9;  // determinism: no wall-clock limit fires
  p.window_fraig = true;  // the SAT sweep is part of the per-window flow
  p.window_cec.time_limit_s = 0.0;
  return p;
}

bool sim_equal(const Aig& a, const Aig& b) {
  Rng rng(42);
  return sim_probably_equal(a, b, rng, 32);
}

// --- micro benchmarks --------------------------------------------------------

void BM_AssignWindows(benchmark::State& state) {
  Aig aig = tile_to_ands(tile_base(), 100000);
  for (auto _ : state) {
    WindowAssignment a = assign_windows(aig, 4000);
    benchmark::DoNotOptimize(a.num_windows);
  }
  state.SetItemsProcessed(state.iterations() * aig.num_ands());
}
BENCHMARK(BM_AssignWindows);

void BM_BinaryAigerRoundTrip(benchmark::State& state) {
  Aig aig = tile_to_ands(tile_base(), 100000);
  for (auto _ : state) {
    Aig back = read_aiger_binary(write_aiger_binary(aig));
    benchmark::DoNotOptimize(back.num_ands());
  }
  state.SetItemsProcessed(state.iterations() * aig.num_ands());
}
BENCHMARK(BM_BinaryAigerRoundTrip);

// --- the scaling ladder ------------------------------------------------------

bool run_scaling(const char* json_path) {
  bool all_ok = true;
  Json rungs = Json::array();

  std::printf("\n-- partitioned saturation scaling ladder (window_size "
              "4000, doubled-adder tiles) --\n");

  const std::size_t kBigTarget = 1000000;
  Aig big;  // kept for the whole-circuit comparison below
  PartitionStats big_stats;

  for (std::size_t target : {std::size_t{20000}, std::size_t{100000},
                             kBigTarget}) {
    Aig aig = tile_to_ands(tile_base(), target);
    PartitionParams p = scale_params();
    Timer timer;
    PartitionResult r = partition_optimize(aig, p);
    double seconds = timer.seconds();

    bool completed = r.stats.completed;
    bool reduced = completed && r.stats.ands_after < r.stats.ands_before;
    // Every adopted window passed its own SAT gate inside partition_optimize;
    // the stitched whole must additionally agree under random simulation at
    // every rung, and at the smallest rung a monolithic SAT miter must prove
    // it outright (one shared conflict budget across the whole miter, so the
    // proof only stays tractable there — which is the point of this mode).
    bool equivalent = completed && sim_equal(aig, r.optimized);
    const char* cec_mode = "window-sat+simulation";
    if (completed && target <= 20000) {
      cec_mode = "window-sat+monolithic-sat";
      CecParams cp;
      cp.time_limit_s = 0.0;  // conflict-bounded only
      equivalent =
          equivalent &&
          cec(aig, r.optimized, cp).status == CecStatus::kEquivalent;
    }
    bool ok = completed && reduced && equivalent;
    all_ok = all_ok && ok;

    std::printf("%8zu ands | %5zu windows (%zu adopted, %zu qor-rej, %zu "
                "cec-rej) | %8zu ands out | %8.2f s | %s%s\n",
                r.stats.ands_before, r.stats.num_windows,
                r.stats.windows_adopted, r.stats.windows_rejected_qor,
                r.stats.windows_rejected_cec, r.stats.ands_after, seconds,
                cec_mode, ok ? "" : "  [FAIL]");

    Json entry = Json::object();
    entry["target_ands"] = static_cast<std::uint64_t>(target);
    entry["ands_before"] = static_cast<std::uint64_t>(r.stats.ands_before);
    entry["ands_after"] = static_cast<std::uint64_t>(r.stats.ands_after);
    entry["num_windows"] = static_cast<std::uint64_t>(r.stats.num_windows);
    entry["windows_adopted"] =
        static_cast<std::uint64_t>(r.stats.windows_adopted);
    entry["windows_rejected_qor"] =
        static_cast<std::uint64_t>(r.stats.windows_rejected_qor);
    entry["windows_rejected_cec"] =
        static_cast<std::uint64_t>(r.stats.windows_rejected_cec);
    entry["seconds"] = seconds;
    entry["cec_mode"] = std::string(cec_mode);
    entry["equivalent"] = equivalent;
    entry["reduced_ands"] = reduced;
    rungs.push_back(std::move(entry));

    if (target == kBigTarget) {
      big = std::move(aig);
      big_stats = r.stats;
    }
  }

  // --- whole-circuit saturation on the 10^6 circuit, same budget ------------
  // The same conversion/rewrite/extract body every window ran, on the whole
  // circuit, under the same RunnerParams. The initial e-graph already
  // exceeds the e-node budget, so the runner must halt at the node limit
  // without applying a single rewrite — the scaling wall this PR removes.
  Json whole = Json::object();
  {
    PartitionParams p = scale_params();
    FlowParams params;
    params.rewrite = p.rewrite;
    params.verify = false;
    Pipeline pipeline;
    pipeline.add("EgraphConversion");
    pipeline.add("Rewrite");
    pipeline.add("EgraphConversion");
    Timer timer;
    FlowResult result = pipeline.run(big, params);
    double seconds = timer.seconds();

    std::size_t applied = 0;
    for (std::size_t a : result.rewrite_report.rule_applications) applied += a;
    // The runner notices the blown budget during its first apply phase, so
    // a handful of rewrites may land before the halt — the gate is that it
    // stops at the node limit with nothing to show for it (no reduction).
    bool whole_stuck = result.rewrite_report.stop_reason ==
                           StopReason::kNodeLimit &&
                       result.final_aig.num_ands() >= big.num_ands();
    bool partition_beat_it = big_stats.completed &&
                             big_stats.ands_after < big_stats.ands_before;
    bool ok = whole_stuck && partition_beat_it;
    all_ok = all_ok && ok;

    std::printf("whole-circuit mode on %zu ands: stop=%s, %zu rewrites "
                "applied, %zu ands out, %.2f s | partitioned: %zu ands out"
                "%s\n",
                big.num_ands(),
                stop_reason_name(result.rewrite_report.stop_reason), applied,
                result.final_aig.num_ands(), seconds, big_stats.ands_after,
                ok ? "" : "  [FAIL]");

    whole["stop_reason"] =
        std::string(stop_reason_name(result.rewrite_report.stop_reason));
    whole["rewrites_applied"] = static_cast<std::uint64_t>(applied);
    whole["ands_after"] =
        static_cast<std::uint64_t>(result.final_aig.num_ands());
    whole["seconds"] = seconds;
    whole["halted_without_progress"] = whole_stuck;
    whole["partition_completed_and_improved"] = partition_beat_it;
  }

  // --- checkpoint-resume determinism at the 10^5 rung -----------------------
  Json resume = Json::object();
  {
    Aig aig = tile_to_ands(tile_base(), 100000);
    PartitionParams base = scale_params();

    PartitionResult straight = partition_optimize(aig, base);
    std::string want = write_aiger_binary(straight.optimized);

    const char* ckpt = "BENCH_scale.ckpt";
    std::remove(ckpt);
    PartitionParams killed = base;
    killed.checkpoint_path = ckpt;
    killed.stop_after_chunks = 1;
    (void)partition_optimize(aig, killed);

    PartitionParams resumed_params = base;
    resumed_params.checkpoint_path = ckpt;
    Timer timer;
    PartitionResult resumed = partition_optimize(aig, resumed_params);
    double seconds = timer.seconds();
    std::remove(ckpt);

    bool bytes_equal = resumed.stats.completed &&
                       write_aiger_binary(resumed.optimized) == want;
    bool qor_equal = resumed.stats.ands_after == straight.stats.ands_after &&
                     resumed.stats.windows_adopted ==
                         straight.stats.windows_adopted;
    bool ok = bytes_equal && qor_equal;
    all_ok = all_ok && ok;

    std::printf("checkpoint resume: %zu/%zu chunks replayed, netlist %s, "
                "qor %s, %.2f s%s\n",
                resumed.stats.chunks_resumed, resumed.stats.chunks_total,
                bytes_equal ? "bit-identical" : "DIVERGED",
                qor_equal ? "equal" : "DIVERGED", seconds,
                ok ? "" : "  [FAIL]");

    resume["chunks_resumed"] =
        static_cast<std::uint64_t>(resumed.stats.chunks_resumed);
    resume["chunks_total"] =
        static_cast<std::uint64_t>(resumed.stats.chunks_total);
    resume["netlist_bit_identical"] = bytes_equal;
    resume["qor_equal"] = qor_equal;
    resume["seconds"] = seconds;
  }

  Json doc = Json::object();
  doc["benchmark"] = "partitioned-saturation-scaling";
  doc["window_size"] = static_cast<std::uint64_t>(scale_params().window_size);
  doc["rungs"] = std::move(rungs);
  doc["whole_circuit_mode"] = std::move(whole);
  doc["checkpoint_resume"] = std::move(resume);
  doc["all_checks_passed"] = all_ok;

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", json_path);
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const char* json_path = argc > 1 ? argv[1] : "BENCH_scale.json";
  return run_scaling(json_path) ? 0 : 1;
}
