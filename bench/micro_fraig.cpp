// SAT-sweeping perf harness: naive all-pairs SAT sweeping vs. the
// simulation-guided fraig engine (random-simulation candidate classes +
// counterexample replay), on identical inputs.
//
// Workloads are "doubled" benchgen circuits — two functionally equal,
// structurally different copies sharing the PIs — so every node of one copy
// has an equivalent partner structural hashing cannot see. For each circuit
// the harness records wall clock, SAT-query counts and the resulting
// AND-node counts in BENCH_fraig.json, and enforces through its exit code:
//   * both sweeps shrink the doubled circuit (fraig finds real merges),
//   * naive and guided sweeps reach the identical AND count (QoR equality —
//     pruning may only skip SAT calls, never merges),
//   * `cec` proves every swept output equivalent to its input.
// The speedup itself is recorded, not asserted (machine-dependent).
//
// Builds with google-benchmark when available, and against the bundled
// minibench fallback otherwise (see EMORPHIC_USE_GBENCH in CMakeLists.txt).

#ifdef EMORPHIC_HAVE_GBENCH
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
namespace benchmark = minibench;
#endif

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "benchgen/doubling.hpp"
#include "cec/cec.hpp"
#include "opt/fraig.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace emorphic;

void BM_FraigGuidedDoubledAdder(benchmark::State& state) {
  Aig aig = doubled(make_adder(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    Aig swept = fraig(aig);
    benchmark::DoNotOptimize(swept.num_ands());
  }
  state.SetItemsProcessed(state.iterations() * aig.num_ands());
}
BENCHMARK(BM_FraigGuidedDoubledAdder)->Arg(8)->Arg(16);

void BM_FraigSimulationOnly(benchmark::State& state) {
  // Mostly the candidate-partitioning front-end: with a conflict budget of
  // 1 nearly every non-trivial proof gives up immediately, so the time is
  // dominated by simulation + partition refinement.
  Aig aig = doubled(make_adder(16));
  FraigParams params;
  params.conflict_limit = 1;
  for (auto _ : state) {
    FraigStats stats;
    Aig swept = fraig(aig, params, &stats);
    benchmark::DoNotOptimize(stats.classes);
  }
}
BENCHMARK(BM_FraigSimulationOnly);

// --- naive vs. simulation-guided comparison harness --------------------------

struct SweepOutcome {
  double seconds = 0.0;
  FraigStats stats;
  Aig result;
};

SweepOutcome run_sweep(const Aig& aig, bool guided) {
  FraigParams params;
  params.use_simulation = guided;
  // Complete sweeps: both modes must merge alike, so no proof budget and no
  // class-size cap (the naive mode has no cap, so a capped guided sweep
  // could legitimately merge less on a class-heavy workload).
  params.conflict_limit = 0;
  params.max_class_size = static_cast<std::size_t>(-1);
  SweepOutcome out;
  Timer timer;
  out.result = fraig(aig, params, &out.stats);
  out.seconds = timer.seconds();
  return out;
}

struct CircuitCase {
  std::string name;
  Aig aig;
};

bool run_comparison(const char* json_path) {
  // Small widths: the naive baseline is quadratic in SAT queries by design.
  std::vector<CircuitCase> cases;
  cases.push_back({"adder6_doubled", doubled(make_adder(6))});
  cases.push_back({"multiplier4_doubled", doubled(make_multiplier(4))});
  cases.push_back({"square4_doubled", doubled(make_square(4))});
  cases.push_back({"arbiter4_doubled", doubled(make_arbiter(4))});

  std::printf("\n-- SAT sweeping: naive all-pairs vs. simulation-guided "
              "(identical inputs, unbounded proofs) --\n");

  bool all_ok = true;
  Json circuits = Json::array();
  for (CircuitCase& c : cases) {
    SweepOutcome naive = run_sweep(c.aig, /*guided=*/false);
    SweepOutcome guided = run_sweep(c.aig, /*guided=*/true);

    bool shrank = guided.stats.ands_after < guided.stats.ands_before;
    bool qor_equal = guided.stats.ands_after == naive.stats.ands_after;
    CecStatus naive_cec = cec(c.aig, naive.result).status;
    CecStatus guided_cec = cec(c.aig, guided.result).status;
    bool equivalent = naive_cec == CecStatus::kEquivalent &&
                      guided_cec == CecStatus::kEquivalent;
    bool ok = shrank && qor_equal && equivalent;
    all_ok = all_ok && ok;

    double speedup = guided.seconds > 0.0 ? naive.seconds / guided.seconds : 0.0;
    std::printf(
        "%-20s %4u -> %4u ands | naive %8.3f s (%6zu queries) | guided "
        "%8.3f s (%5zu queries, %zu replays) | %5.1fx | cec %s/%s%s\n",
        c.name.c_str(), guided.stats.ands_before, guided.stats.ands_after,
        naive.seconds, naive.stats.sat_calls, guided.seconds,
        guided.stats.sat_calls, guided.stats.cex_replays, speedup,
        cec_status_name(naive_cec), cec_status_name(guided_cec),
        ok ? "" : "  [FAIL]");

    Json entry = Json::object();
    entry["name"] = c.name;
    entry["ands_before"] = static_cast<std::uint64_t>(guided.stats.ands_before);
    entry["ands_after_guided"] =
        static_cast<std::uint64_t>(guided.stats.ands_after);
    entry["ands_after_naive"] =
        static_cast<std::uint64_t>(naive.stats.ands_after);
    entry["naive_seconds"] = naive.seconds;
    entry["guided_seconds"] = guided.seconds;
    entry["speedup"] = speedup;
    entry["naive_sat_calls"] = static_cast<std::uint64_t>(naive.stats.sat_calls);
    entry["guided_sat_calls"] =
        static_cast<std::uint64_t>(guided.stats.sat_calls);
    entry["guided_candidate_classes"] =
        static_cast<std::uint64_t>(guided.stats.classes);
    entry["guided_proved"] = static_cast<std::uint64_t>(guided.stats.proved);
    entry["guided_refuted"] = static_cast<std::uint64_t>(guided.stats.refuted);
    entry["guided_cex_replays"] =
        static_cast<std::uint64_t>(guided.stats.cex_replays);
    entry["guided_sim_words"] =
        static_cast<std::uint64_t>(guided.stats.sim_words);
    entry["cec_naive"] = std::string(cec_status_name(naive_cec));
    entry["cec_guided"] = std::string(cec_status_name(guided_cec));
    entry["reduced_ands"] = shrank;
    entry["qor_equal"] = qor_equal;
    circuits.push_back(std::move(entry));
  }

  // A larger guided-only data point: the naive baseline would take minutes
  // here, which is exactly the point of simulation-guided pruning.
  {
    Aig big = doubled(make_adder(24));
    SweepOutcome guided = run_sweep(big, /*guided=*/true);
    CecStatus status = cec(big, guided.result).status;
    bool ok = status == CecStatus::kEquivalent &&
              guided.stats.ands_after < guided.stats.ands_before;
    all_ok = all_ok && ok;
    std::printf("%-20s %4u -> %4u ands | guided-only     %8.3f s (%5zu "
                "queries) | cec %s%s\n",
                "adder24_doubled", guided.stats.ands_before,
                guided.stats.ands_after, guided.seconds,
                guided.stats.sat_calls, cec_status_name(status),
                ok ? "" : "  [FAIL]");
    Json entry = Json::object();
    entry["name"] = "adder24_doubled";
    entry["ands_before"] = static_cast<std::uint64_t>(guided.stats.ands_before);
    entry["ands_after_guided"] =
        static_cast<std::uint64_t>(guided.stats.ands_after);
    entry["guided_seconds"] = guided.seconds;
    entry["guided_sat_calls"] =
        static_cast<std::uint64_t>(guided.stats.sat_calls);
    entry["cec_guided"] = std::string(cec_status_name(status));
    entry["reduced_ands"] =
        guided.stats.ands_after < guided.stats.ands_before;
    circuits.push_back(std::move(entry));
  }

  Json doc = Json::object();
  doc["benchmark"] = "fraig-naive-vs-simulation-guided";
  doc["circuits"] = std::move(circuits);
  doc["all_checks_passed"] = all_ok;

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", json_path);
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const char* json_path = argc > 1 ? argv[1] : "BENCH_fraig.json";
  return run_comparison(json_path) ? 0 : 1;
}
