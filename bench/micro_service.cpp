// Synthesis-service micro bench: request throughput and latency against an
// in-process SynthServer, cold caches vs warm. Writes BENCH_service.json
// and enforces through its exit code:
//
//   1. warm p50 latency strictly better than cold p50 on a
//      repeated-circuit workload (the flow-result cache answering);
//   2. QoR of served results bit-identical to one-shot CLI-style
//      Pipeline runs with the same FlowParams and seed (serving through
//      the warm substrate must not change answers);
//   3. every served circuit CEC-equivalent to its input.
//
//   $ ./bench/micro_service [BENCH_service.json]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig_io.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/control.hpp"
#include "cec/cec.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/timer.hpp"

using namespace emorphic;
using namespace emorphic::service;

namespace {

constexpr const char* kSocketPath = "micro_service.sock";
constexpr unsigned kWarmClients = 4;
constexpr unsigned kWarmRoundsPerClient = 3;

struct Workload {
  std::string name;
  Aig aig;
  std::string aiger;
};

FlowParams bench_params() {
  // Laptop-scale effort: the point is serving overhead and cache warmth,
  // not absolute QoR, so keep individual flows around a second.
  FlowParams params;
  params.rounds = 2;
  params.rewrite.max_iterations = 2;
  params.rewrite.max_enodes = 8000;
  params.sa.iterations = 2;
  params.sa.moves_per_iteration = 2;
  params.sa.num_threads = 2;
  params.verify = false;  // the bench CECs the returned circuits itself
  return params;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(idx + 0.5)];
}

Json latency_summary(const std::vector<double>& seconds) {
  Json obj = Json::object();
  obj["requests"] = static_cast<std::uint64_t>(seconds.size());
  obj["p50_ms"] = percentile(seconds, 0.50) * 1e3;
  obj["p99_ms"] = percentile(seconds, 0.99) * 1e3;
  return obj;
}

JobRequest make_request(const Workload& w, const std::string& id,
                        std::uint64_t seed, bool return_circuit) {
  JobRequest req;
  req.id = id;
  req.circuit = w.aiger;
  req.seed = seed;
  req.return_circuit = return_circuit;
  return req;
}

/// Submit + await, recording client-observed latency. Returns the result
/// frame; exits the process on any rejection (the bench expects a healthy
/// server throughout).
Json run_job(SynthClient& client, const JobRequest& req,
             std::vector<double>* latencies) {
  Timer timer;
  Json verdict = client.submit(req);
  if (verdict.at("type").as_string() != "accepted") {
    std::fprintf(stderr, "job '%s' rejected: %s\n", req.id.c_str(),
                 verdict.dump().c_str());
    std::exit(1);
  }
  Json terminal = client.await(req.id);
  if (terminal.at("type").as_string() != "result") {
    std::fprintf(stderr, "job '%s' did not complete: %s\n", req.id.c_str(),
                 terminal.dump().c_str());
    std::exit(1);
  }
  if (latencies != nullptr) latencies->push_back(timer.seconds());
  return terminal;
}

bool same_qor(const Json& served_qor, const FlowQor& local) {
  return served_qor.at("area").as_number() == local.area &&
         served_qor.at("delay").as_number() == local.delay &&
         static_cast<std::uint32_t>(served_qor.at("lev").as_int()) ==
             local.lev;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_service.json";

  std::vector<Workload> workloads;
  for (auto& [name, aig] :
       std::initializer_list<std::pair<const char*, Aig>>{
           {"adder8", make_adder(8)},
           {"arbiter6", make_arbiter(6)},
           {"square6", make_square(6)}}) {
    workloads.push_back({name, aig, write_aiger(aig)});
  }

  ServerConfig config;
  config.unix_socket_path = kSocketPath;
  config.workers = kWarmClients;
  config.queue_capacity = 64;
  config.base_params = bench_params();
  SynthServer server(config);
  server.start();

  bool all_ok = true;
  Json doc = Json::object();
  doc["benchmark"] = "synthesis-service-cold-vs-warm";

  // --- phase 1: cold — every request is a first sight ----------------------
  std::vector<double> cold_latencies;
  std::vector<Json> cold_results;
  {
    SynthClient client = SynthClient::connect_unix(kSocketPath);
    for (const Workload& w : workloads) {
      cold_results.push_back(run_job(
          client, make_request(w, "cold-" + w.name, 1, true),
          &cold_latencies));
    }
  }

  // --- QoR gate: served == one-shot CLI-style runs -------------------------
  Json qor_rows = Json::array();
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    FlowContext ctx;
    ctx.params = bench_params();
    ctx.input = workloads[i].aig;
    ctx.seed = 1;
    FlowResult local = Pipeline::emorphic(ctx.params).run(ctx);
    const Json& served = cold_results[i].at("qor");
    const bool match = same_qor(served, local.qor);
    all_ok = all_ok && match;
    Json row = Json::object();
    row["circuit"] = workloads[i].name;
    row["served_area"] = served.at("area").as_number();
    row["served_delay"] = served.at("delay").as_number();
    row["local_area"] = local.qor.area;
    row["local_delay"] = local.qor.delay;
    row["qor_matches_one_shot"] = match;
    qor_rows.push_back(row);
    if (!match) {
      std::fprintf(stderr, "QoR mismatch on %s: served != one-shot\n",
                   workloads[i].name.c_str());
    }
  }
  doc["qor_vs_one_shot"] = qor_rows;

  // --- CEC gate: served circuits are equivalent to their inputs ------------
  bool cec_ok = true;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    Aig served = read_aiger(cold_results[i].at("circuit").as_string());
    CecResult check = cec(workloads[i].aig, served);
    if (check.status != CecStatus::kEquivalent) {
      cec_ok = false;
      std::fprintf(stderr, "CEC failed on %s: %s\n",
                   workloads[i].name.c_str(), cec_status_name(check.status));
    }
  }
  all_ok = all_ok && cec_ok;
  doc["served_circuits_cec_equivalent"] = cec_ok;

  // --- phase 2: warm — concurrent clients repeating the same requests ------
  std::vector<double> warm_latencies;
  double warm_span_s = 0.0;
  {
    std::vector<std::vector<double>> per_client(kWarmClients);
    std::vector<std::thread> clients;
    Timer span;
    for (unsigned c = 0; c < kWarmClients; ++c) {
      clients.emplace_back([&, c] {
        SynthClient client = SynthClient::connect_unix(kSocketPath);
        for (unsigned round = 0; round < kWarmRoundsPerClient; ++round) {
          for (const Workload& w : workloads) {
            std::string id = "warm-" + std::to_string(c) + "-" +
                             std::to_string(round) + "-" + w.name;
            run_job(client, make_request(w, id, 1, false), &per_client[c]);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    warm_span_s = span.seconds();
    for (auto& v : per_client) {
      warm_latencies.insert(warm_latencies.end(), v.begin(), v.end());
    }
  }

  // --- phase 3: same circuits, new seed — QoR memo warm, result cache cold -
  std::vector<double> alt_seed_latencies;
  {
    SynthClient client = SynthClient::connect_unix(kSocketPath);
    for (const Workload& w : workloads) {
      run_job(client, make_request(w, "alt-" + w.name, 7, false),
              &alt_seed_latencies);
    }
  }

  const double cold_p50 = percentile(cold_latencies, 0.50);
  const double warm_p50 = percentile(warm_latencies, 0.50);
  const bool warm_faster = warm_p50 < cold_p50;
  all_ok = all_ok && warm_faster;
  if (!warm_faster) {
    std::fprintf(stderr, "warm p50 (%.3f ms) not better than cold (%.3f ms)\n",
                 warm_p50 * 1e3, cold_p50 * 1e3);
  }

  ServerStats stats = server.stats();
  WarmCacheStats cache = server.warm_cache().stats();
  server.stop();

  doc["cold"] = latency_summary(cold_latencies);
  doc["warm"] = latency_summary(warm_latencies);
  doc["alt_seed"] = latency_summary(alt_seed_latencies);
  doc["warm_req_per_s"] =
      warm_span_s > 0.0
          ? static_cast<double>(warm_latencies.size()) / warm_span_s
          : 0.0;
  doc["warm_p50_better_than_cold"] = warm_faster;
  Json cache_json = Json::object();
  cache_json["result_hits"] = cache.result_hits;
  cache_json["result_misses"] = cache.result_misses;
  cache_json["result_hit_rate"] =
      cache.result_hits + cache.result_misses > 0
          ? static_cast<double>(cache.result_hits) /
                static_cast<double>(cache.result_hits + cache.result_misses)
          : 0.0;
  cache_json["qor_hits"] = cache.qor_hits;
  cache_json["qor_misses"] = cache.qor_misses;
  cache_json["qor_hit_rate"] =
      cache.qor_hits + cache.qor_misses > 0
          ? static_cast<double>(cache.qor_hits) /
                static_cast<double>(cache.qor_hits + cache.qor_misses)
          : 0.0;
  doc["cache"] = cache_json;
  Json stats_json = Json::object();
  stats_json["jobs_accepted"] = stats.jobs_accepted;
  stats_json["jobs_completed"] = stats.jobs_completed;
  stats_json["result_cache_hits"] = stats.result_cache_hits;
  doc["server"] = stats_json;
  doc["all_checks_passed"] = all_ok;

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf(
      "cold p50 %.1f ms | warm p50 %.2f ms | %.0f req/s warm | "
      "result cache %llu/%llu | qor memo %llu/%llu | %s\n",
      cold_p50 * 1e3, warm_p50 * 1e3,
      doc.at("warm_req_per_s").as_number(),
      static_cast<unsigned long long>(cache.result_hits),
      static_cast<unsigned long long>(cache.result_hits +
                                      cache.result_misses),
      static_cast<unsigned long long>(cache.qor_hits),
      static_cast<unsigned long long>(cache.qor_hits + cache.qor_misses),
      all_ok ? "PASS" : "FAIL");
  std::printf("wrote %s\n", json_path);
  return all_ok ? 0 : 1;
}
