// Reproduces Table III: e-graph <-> circuit conversion, the E-Syn
// S-expression path vs. E-morphic's direct DAG-to-DAG conversion, with
// timeout/out-of-memory guards (scaled: 10 s / 64 MiB of flattened text in
// place of the paper's 3600 s / 8 GB).
//
// Shape to reproduce: the S-expression path succeeds only on the small,
// shallow circuits (adder, arbiter) and blows up on everything with deep
// reconvergence; DAG-to-DAG converts every circuit in milliseconds and is
// insensitive to size.

#include <cstdio>

#include "bench_util.hpp"
#include "egraph/sexpr.hpp"
#include "util/timer.hpp"

using namespace emorphic;
using namespace emorphic::bench;

int main() {
  std::printf("=== Table III: e-graph-circuit conversion comparison ===\n");
  std::printf("(guards scaled: %.0f s time, %u MiB flattened text)\n\n", 10.0,
              64u);
  std::printf("%-10s %10s %9s | %12s %13s | %12s %13s\n", "Design", "#e-node",
              "(paper)", "E-Syn fwd(s)", "E-Syn bwd(s)", "DAG fwd(s)",
              "DAG bwd(s)");
  print_rule(100);

  std::vector<double> fwd_times, bwd_times;
  for (const auto& spec : epfl_specs()) {
    Aig circuit = make_epfl(spec.name);

    // --- E-morphic: direct DAG-to-DAG --------------------------------------
    Timer tf;
    CircuitEGraph ce = aig_to_egraph(circuit);
    double dag_fwd = tf.seconds();
    std::size_t enodes = ce.egraph.num_enodes();
    Timer tb;
    Aig back = egraph_to_aig_greedy(ce);
    double dag_bwd = tb.seconds();
    (void)back;
    fwd_times.push_back(std::max(dag_fwd, 1e-6));
    bwd_times.push_back(std::max(dag_bwd, 1e-6));

    // --- E-Syn baseline: S-expression flattening ---------------------------
    SExprLimits limits;
    limits.time_limit_s = 10.0;
    limits.max_chars = 64u << 20;
    std::string esyn_fwd = "TO", esyn_bwd = "N.A.*";
    std::string sexpr_text;
    try {
      Timer te;
      sexpr_text = aig_to_sexpr(circuit, limits);
      sexpr_to_egraph(sexpr_text, limits);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", te.seconds());
      esyn_fwd = buf;
    } catch (const SExprLimitError& e) {
      esyn_fwd = e.kind() == SExprLimitError::Kind::kTimeout ? "TO" : "TO & MO";
    }
    if (esyn_fwd != "TO" && esyn_fwd != "TO & MO") {
      try {
        Timer te;
        Aig from_sexpr = sexpr_to_aig(sexpr_text, limits);
        (void)from_sexpr;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", te.seconds());
        esyn_bwd = buf;
      } catch (const SExprLimitError&) {
        esyn_bwd = "TO";
      }
    }

    std::printf("%-10s %10zu %9u | %12s %13s | %12.4f %13.4f\n",
                spec.name.c_str(), enodes, spec.paper_enodes, esyn_fwd.c_str(),
                esyn_bwd.c_str(), dag_fwd, dag_bwd);
  }
  print_rule(100);
  std::printf("%-10s %10s %9s | %12s %13s | %12.4f %13.4f\n", "GEOMEAN", "-",
              "-", "-", "-", geomean(fwd_times), geomean(bwd_times));
  std::printf("\n* backward conversion unavailable when the forward "
              "conversion already failed (as in the paper).\n");
  std::printf("Paper geomean (full-size circuits): forward 0.65 s, backward "
              "0.46 s; E-Syn TO/MO on 8 of 10.\n");
  return 0;
}
