// Micro-benchmarks for the technology-mapping hot path plus the before/after
// harness for the SA evaluation overhaul: every Metropolis move of the
// extraction loop (paper Sec. III-B/III-C) serializes a candidate AIG and
// scores it with a quick technology mapping, so the mapper's per-evaluation
// setup cost — rebuilding the NPN matcher and reallocating the cut/DP
// arenas — used to dominate annealing wall clock.
//
// The comparison pits three evaluator configurations against each other on
// an identical annealing run:
//   * seed     — the pre-PR path: fresh CutManager + fresh Matcher (full
//                library NPN canonization) per evaluation;
//   * shared   — one thread-safe Matcher for all chains + per-thread
//                reusable MapperWorkspace (this PR's hot path);
//   * memoized — shared, plus the per-run QoR cache keyed by the candidate's
//                structural signature (SaParams::memoize_qor).
// All three must produce the *identical* annealing trajectory and final QoR
// (the evaluators are exact and deterministic); the harness enforces that
// through its exit code and writes the throughput numbers to
// BENCH_mapper.json so the perf trajectory is machine-readable across PRs.
//
// Builds with google-benchmark when available, and against the bundled
// minibench fallback otherwise (see EMORPHIC_USE_GBENCH in CMakeLists.txt).

#ifdef EMORPHIC_HAVE_GBENCH
#include <benchmark/benchmark.h>
#else
#include "minibench.hpp"
namespace benchmark = minibench;
#endif

#include <cstdio>
#include <fstream>

#include "benchgen/arith.hpp"
#include "core/emorphic.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace emorphic;

Aig make_random_aig(unsigned pis, unsigned ands, std::uint64_t seed) {
  Rng rng(seed);
  Aig aig;
  std::vector<Lit> pool;
  for (unsigned i = 0; i < pis; ++i) pool.push_back(make_lit(aig.add_pi()));
  for (unsigned k = 0; k < ands; ++k) {
    Lit a = pool[rng.next_below(pool.size())];
    Lit b = pool[rng.next_below(pool.size())];
    if (rng.chance(0.5)) a = lit_not(a);
    if (rng.chance(0.5)) b = lit_not(b);
    pool.push_back(aig.make_and(a, b));
  }
  for (unsigned i = 0; i < 8; ++i) aig.add_po(pool[pool.size() - 1 - i]);
  return aig;
}

/// The pre-PR evaluation path, preserved for the comparison: every call
/// rebuilds the matcher (library NPN canonization included) and allocates
/// fresh cut/DP state, exactly like the old map_to_cells did.
class SeedStyleEvaluator : public QorEvaluator {
 public:
  explicit SeedStyleEvaluator(const CellLibrary& library,
                              double area_weight = 0.5)
      : QorEvaluator(area_weight), library_(&library) {
    params_.num_cuts = 4;
    params_.area_recovery = false;
  }

  Qor evaluate(const Aig& candidate) const override {
    MappedQor q = map_qor(candidate, *library_, params_);
    return Qor{q.area, q.delay};
  }

 private:
  const CellLibrary* library_;
  MapperParams params_;
};

void BM_MatcherBuild(benchmark::State& state) {
  const CellLibrary& lib = CellLibrary::asap7_like();
  for (auto _ : state) {
    Matcher matcher(lib);
    benchmark::DoNotOptimize(matcher.cache_size());
  }
}
BENCHMARK(BM_MatcherBuild);

void BM_MatchWarmCache(benchmark::State& state) {
  Matcher matcher(CellLibrary::asap7_like());
  Rng rng(17);
  std::vector<Tt> tts;
  for (int i = 0; i < 256; ++i) tts.push_back(rng.next() & tt_mask(4));
  for (Tt t : tts) matcher.match(t, 4);  // warm
  for (auto _ : state) {
    std::size_t total = 0;
    for (Tt t : tts) total += matcher.match(t, 4).size();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MatchWarmCache);

void BM_MapFreshMatcher(benchmark::State& state) {
  Aig aig = make_random_aig(24, static_cast<unsigned>(state.range(0)), 11);
  const CellLibrary& lib = CellLibrary::asap7_like();
  for (auto _ : state) {
    MappedQor qor = map_qor(aig, lib);
    benchmark::DoNotOptimize(qor.delay);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MapFreshMatcher)->Arg(500)->Arg(4000);

void BM_MapSharedMatcher(benchmark::State& state) {
  Aig aig = make_random_aig(24, static_cast<unsigned>(state.range(0)), 11);
  Matcher matcher(CellLibrary::asap7_like());
  MapperWorkspace workspace;
  for (auto _ : state) {
    MappedQor qor = map_qor(aig, matcher, {}, &workspace);
    benchmark::DoNotOptimize(qor.delay);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MapSharedMatcher)->Arg(500)->Arg(4000);

// --- SA evaluation-throughput before/after harness ---------------------------

struct EvalWorkload {
  // Candidate size vs. e-graph size matters here: mapping cost scales with
  // the candidate AIG, neighbor generation with the e-graph, and only the
  // former differs between configurations — so the workload uses a wide
  // adder with few, capped rewrite iterations.
  unsigned adder_bits = 48;
  std::size_t rewrite_iterations = 2;
  std::size_t max_enodes = 6000;
  std::size_t max_matches_per_rule = 1200;
  unsigned sa_threads = 3;        // one chain per init corner
  unsigned sa_iterations = 4;     // paper schedule length
  unsigned sa_moves = 10;
  std::uint64_t sa_seed = 5;
  int repeats = 3;                // best-of-N wall clock per configuration
};

struct EvalOutcome {
  double seconds = 0.0;          // best of repeats
  std::size_t requested = 0;     // candidate evaluations asked for
  std::size_t evaluator_calls = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t trace_len = 0;
  Qor best_qor;
  double best_cost = 0.0;
};

EvalOutcome run_config(const CircuitEGraph& ce, const QorEvaluator& evaluator,
                       const EvalWorkload& wl, bool memoize) {
  SaParams params;
  params.num_threads = wl.sa_threads;
  params.iterations = wl.sa_iterations;
  params.moves_per_iteration = wl.sa_moves;
  params.seed = wl.sa_seed;
  params.memoize_qor = memoize;
  EvalOutcome out;
  for (int rep = 0; rep < wl.repeats; ++rep) {
    Timer timer;
    SaResult result =
        sa_extract(ce.egraph, ce.roots, ce.pi_names, evaluator, params);
    double seconds = timer.seconds();
    if (rep == 0 || seconds < out.seconds) out.seconds = seconds;
    out.evaluator_calls = result.evaluations;
    out.cache_hits = result.qor_cache_hits;
    out.cache_misses = result.qor_cache_misses;
    out.requested = memoize ? result.qor_cache_hits + result.qor_cache_misses
                            : result.evaluations;
    out.trace_len = result.trace.size();
    out.best_qor = result.best_qor;
    out.best_cost = result.best_cost;
  }
  return out;
}

bool same_qor(const EvalOutcome& a, const EvalOutcome& b) {
  return a.best_cost == b.best_cost && a.best_qor.area == b.best_qor.area &&
         a.best_qor.delay == b.best_qor.delay && a.trace_len == b.trace_len &&
         a.requested == b.requested;
}

/// Returns false when any configuration's annealing run deviates from the
/// seed path (different QoR, trace length, or evaluation count) — the
/// speedups themselves are recorded, not asserted.
bool run_evaluation_comparison(const char* json_path) {
  EvalWorkload wl;
  const CellLibrary& lib = CellLibrary::asap7_like();

  Aig aig = make_adder(wl.adder_bits);
  CircuitEGraph ce = aig_to_egraph(aig);
  RunnerParams limits;
  limits.max_iterations = wl.rewrite_iterations;
  limits.max_enodes = wl.max_enodes;
  limits.max_matches_per_rule = wl.max_matches_per_rule;
  run_rewriting(ce.egraph, make_logic_rules(), limits);

  std::printf("\n-- SA evaluation throughput: seed mapper path vs. shared "
              "matcher + memoization --\n");
  std::printf("workload: adder(%u), e-graph %zu classes / %zu e-nodes, "
              "%u chains x %u iters x %u moves\n",
              wl.adder_bits, ce.egraph.num_classes(), ce.egraph.num_enodes(),
              wl.sa_threads, wl.sa_iterations, wl.sa_moves);

  SeedStyleEvaluator seed_eval(lib);
  MapQorEvaluator shared_eval(lib);

  EvalOutcome seed = run_config(ce, seed_eval, wl, /*memoize=*/false);
  EvalOutcome shared = run_config(ce, shared_eval, wl, /*memoize=*/false);
  EvalOutcome memoized = run_config(ce, shared_eval, wl, /*memoize=*/true);

  bool shared_ok = same_qor(seed, shared);
  bool memo_ok = same_qor(seed, memoized);

  // Memoization pays when chains revisit extractions, which happens near
  // convergence: a small, densely-explored e-graph with a long move budget.
  EvalWorkload converged;
  converged.adder_bits = 6;
  converged.rewrite_iterations = 2;
  converged.max_enodes = 1500;
  converged.max_matches_per_rule = 500;
  converged.sa_moves = 24;
  Aig small_aig = make_adder(converged.adder_bits);
  CircuitEGraph small_ce = aig_to_egraph(small_aig);
  RunnerParams small_limits;
  small_limits.max_iterations = converged.rewrite_iterations;
  small_limits.max_enodes = converged.max_enodes;
  small_limits.max_matches_per_rule = converged.max_matches_per_rule;
  run_rewriting(small_ce.egraph, make_logic_rules(), small_limits);
  EvalOutcome conv_shared =
      run_config(small_ce, shared_eval, converged, /*memoize=*/false);
  EvalOutcome conv_memo =
      run_config(small_ce, shared_eval, converged, /*memoize=*/true);
  bool converged_ok = same_qor(conv_shared, conv_memo);

  auto throughput = [](const EvalOutcome& o) {
    return o.seconds > 0.0 ? static_cast<double>(o.requested) / o.seconds : 0.0;
  };
  double seed_tp = throughput(seed);
  double shared_tp = throughput(shared);
  double memo_tp = throughput(memoized);

  std::printf("seed (fresh matcher per eval):  %8.4f s  %9.1f evals/s\n",
              seed.seconds, seed_tp);
  std::printf("shared matcher + workspace:     %8.4f s  %9.1f evals/s  "
              "(%.2fx)\n",
              shared.seconds, shared_tp, shared_tp / seed_tp);
  std::printf("shared + Qor memoization:       %8.4f s  %9.1f evals/s  "
              "(%.2fx; %zu hits / %zu misses)\n",
              memoized.seconds, memo_tp, memo_tp / seed_tp,
              memoized.cache_hits, memoized.cache_misses);
  std::printf("converged adder(%u) workload:   %8.4f s -> %8.4f s memoized  "
              "(%zu hits / %zu misses; QoR identical: %s)\n",
              converged.adder_bits, conv_shared.seconds, conv_memo.seconds,
              conv_memo.cache_hits, conv_memo.cache_misses,
              converged_ok ? "yes" : "NO");
  std::printf("QoR identical — shared: %s; memoized: %s\n",
              shared_ok ? "yes" : "NO", memo_ok ? "yes" : "NO");

  Json workload = Json::object();
  workload["adder_bits"] = static_cast<std::uint64_t>(wl.adder_bits);
  workload["rewrite_iterations"] =
      static_cast<std::uint64_t>(wl.rewrite_iterations);
  workload["max_enodes"] = static_cast<std::uint64_t>(wl.max_enodes);
  workload["sa_threads"] = static_cast<std::uint64_t>(wl.sa_threads);
  workload["sa_iterations"] = static_cast<std::uint64_t>(wl.sa_iterations);
  workload["sa_moves"] = static_cast<std::uint64_t>(wl.sa_moves);
  workload["sa_seed"] = wl.sa_seed;
  workload["repeats"] = static_cast<std::uint64_t>(wl.repeats);
  workload["egraph_classes"] = static_cast<std::uint64_t>(ce.egraph.num_classes());
  workload["egraph_enodes"] = static_cast<std::uint64_t>(ce.egraph.num_enodes());

  Json doc = Json::object();
  doc["benchmark"] = "mapper-sa-evaluation-throughput";
  doc["workload"] = std::move(workload);
  doc["seed_seconds"] = seed.seconds;
  doc["shared_seconds"] = shared.seconds;
  doc["memoized_seconds"] = memoized.seconds;
  doc["requested_evaluations"] = static_cast<std::uint64_t>(seed.requested);
  doc["seed_evals_per_s"] = seed_tp;
  doc["shared_evals_per_s"] = shared_tp;
  doc["memoized_evals_per_s"] = memo_tp;
  doc["speedup_shared"] = shared_tp / seed_tp;
  doc["speedup"] = memo_tp / seed_tp;
  doc["cache_hits"] = static_cast<std::uint64_t>(memoized.cache_hits);
  doc["cache_misses"] = static_cast<std::uint64_t>(memoized.cache_misses);
  doc["qor_equal_shared"] = shared_ok;
  doc["qor_equal_memoized"] = memo_ok;
  doc["best_area"] = seed.best_qor.area;
  doc["best_delay"] = seed.best_qor.delay;
  doc["converged_shared_seconds"] = conv_shared.seconds;
  doc["converged_memoized_seconds"] = conv_memo.seconds;
  doc["converged_cache_hits"] = static_cast<std::uint64_t>(conv_memo.cache_hits);
  doc["converged_cache_misses"] =
      static_cast<std::uint64_t>(conv_memo.cache_misses);
  doc["converged_qor_equal"] = converged_ok;

  std::ofstream file(json_path);
  file << doc.dump(2) << "\n";
  std::printf("wrote %s\n", json_path);

  return shared_ok && memo_ok && converged_ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  const char* json_path = argc > 1 ? argv[1] : "BENCH_mapper.json";
  return run_evaluation_comparison(json_path) ? 0 : 1;
}
