// Reproduces Fig. 9: runtime breakdown of the E-morphic flow — how much of
// the wall clock goes to the conventional ABC-style delay flow vs. e-graph
// conversion vs. SA extraction, for both cost models.
//
// The per-stage times come from FlowObserver telemetry (on_stage_end), not
// hand-inserted timers: the observer collects one StageTelemetry per
// executed pipeline stage and folds them into the Fig. 9 buckets.
//
// Shape target: the conventional flow dominates; conversion is negligible;
// the E-morphic additions are moderate and relatively smaller on the
// larger circuits.

#include <cstdio>

#include "bench_util.hpp"

using namespace emorphic;
using namespace emorphic::bench;

namespace {

/// Accumulates the per-stage telemetry of one pipeline run.
class TelemetryObserver : public FlowObserver {
 public:
  void on_stage_end(const Stage&, const StageTelemetry& stage,
                    const FlowContext&) override {
    telemetry_.stages.push_back(stage);
  }

  EmorphicBreakdown breakdown() const { return breakdown_from(telemetry_); }

 private:
  FlowTelemetry telemetry_;
};

EmorphicBreakdown run_with_telemetry(const Aig& circuit, const FlowParams& params,
                                     const QorEvaluator* evaluator) {
  TelemetryObserver observer;
  FlowContext ctx;
  ctx.params = params;
  ctx.input = circuit;
  ctx.evaluator = evaluator;
  ctx.observer = &observer;
  Pipeline::emorphic().run(ctx);
  return observer.breakdown();
}

void print_breakdown(const char* title,
                     const std::vector<std::pair<std::string, EmorphicBreakdown>>& rows) {
  std::printf("%s\n", title);
  std::printf("%-10s %9s | %7s %7s %7s | 0%%       bar chart        100%%\n",
              "circuit", "total(s)", "flow%", "conv%", "SA%");
  print_rule(88);
  for (const auto& [name, b] : rows) {
    // Rewriting is folded into the SA bar, as the paper groups the
    // e-graph-specific work into "conversion" + "SA extraction".
    double conv = b.conversion_seconds;
    double sa = b.sa_seconds + b.rewrite_seconds;
    double total = b.flow_seconds + conv + sa;
    double pf = 100.0 * b.flow_seconds / total;
    double pc = 100.0 * conv / total;
    double ps = 100.0 * sa / total;
    char bar[33];
    int nf = static_cast<int>(pf * 32 / 100.0 + 0.5);
    int nc = static_cast<int>(pc * 32 / 100.0 + 0.5);
    for (int i = 0; i < 32; ++i) {
      bar[i] = i < nf ? '#' : (i < nf + nc ? 'o' : '.');
    }
    bar[32] = '\0';
    std::printf("%-10s %9.2f | %6.1f%% %6.1f%% %6.1f%% | %s\n", name.c_str(),
                total, pf, pc, ps, bar);
  }
  std::printf("  legend: # ABC-style delay flow   o e-graph conversion   . "
              "rewriting + SA extraction\n\n");
}

}  // namespace

int main() {
  std::printf("=== Fig. 9: runtime breakdown of E-morphic ===\n\n");
  FlowParams params = paper_flow_params();

  // Shared ML model for the runtime-prioritized panel.
  Dataset all;
  for (const char* name : {"adder", "sin", "arbiter", "square"}) {
    DatasetParams dp;
    dp.variants_per_circuit = 12;
    dp.rewrite.max_iterations = 3;
    dp.rewrite.max_enodes = 15000;
    dp.mapping.area_recovery = false;
    all.append(
        generate_variants(make_epfl(name), CellLibrary::asap7_like(), dp));
  }
  MlpParams mp;
  mp.epochs = 120;
  MlCostModel model(mp);
  model.train(all.features, all.delays, all.areas);

  std::vector<std::pair<std::string, EmorphicBreakdown>> exact_rows, ml_rows;
  for (const auto& spec : epfl_specs()) {
    Aig circuit = make_epfl(spec.name);
    FlowParams p = params;
    if (circuit.num_ands() > 3000) {
      p.rewrite.max_enodes = 40000;
      p.sa.moves_per_iteration = 2;
    }
    exact_rows.emplace_back(spec.name,
                            run_with_telemetry(circuit, p, nullptr));

    FlowParams pm = p;
    pm.sa.num_threads = 6;
    ml_rows.emplace_back(spec.name, run_with_telemetry(circuit, pm, &model));
    std::printf("[done] %s\n", spec.name.c_str());
  }
  std::printf("\n");
  print_breakdown("--- E-morphic with ABC-style mapping cost model ---",
                  exact_rows);
  print_breakdown("--- E-morphic with ML cost model ---", ml_rows);
  return 0;
}
